"""Session-scoped caches for the measurement chain.

A :class:`SimulationSession` owns everything that is expensive to
derive but stable across chain calls: AC transfer-function grids
(previously locked inside each ``SteadyStateSolver``), pipeline
executions (schedule + current trace, which do not depend on the
operating point), radiator tilt curves, propagation/antenna gains and
analyzer band masks.

Cache entries are keyed by the *cluster operating state*
(``Cluster.state()``: clock, voltage, powered cores) where relevant, so
a sweep over K clock points performs at most one AC analysis per
distinct state and a re-measurement at a revisited state is a pure
cache hit.  ``Cluster.state_version`` -- a counter bumped by
``set_clock`` / ``set_voltage`` / ``power_gate`` -- lets the session
detect state changes with a single integer comparison instead of
re-reading every field; a version bump invalidates the memoized state
snapshot (counted in ``stats.invalidations``) but never the
state-keyed entries themselves, which remain valid for their own key.

Identity keying: entries tied to a particular live object (a cluster,
an analyzer) are keyed by a *stable token*, never by ``id()``.
Clusters carry a process-wide monotonic ``Cluster.uid``; analyzers are
assigned a session-local token by :meth:`SimulationSession._analyzer_token`
from a monotonic counter, registered through a weak reference so the
registry stays bounded by the number of *live* analyzers (a long-lived
service session sees many) while a live object's token can never be
re-issued.  CPython reuses addresses after garbage collection, so a
bare ``id()``-derived key could silently serve a dead object's cached
entries to a newly allocated one (audit rule R3); the registry guards
its address index with an identity check against the weakly-held
object, so a reused address simply mints a fresh token.

Every cache is FIFO-bounded (``max_executions`` for executions,
``max_grids`` for the derived-grid caches) so a long campaign cannot
grow without limit; eviction order is insertion order.

Passing a :class:`repro.audit.DeterminismTracker` as ``audit=``
shadow-recomputes a seeded sample of cache hits and asserts bitwise
equality with the cached entry, catching aliasing, missing
``state_version`` bumps and in-place mutation at the moment they
corrupt a result.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.audit.tracker import DeterminismTracker
    from repro.cpu.program import LoopProgram
    from repro.cpu.multicore import ClusterExecution
    from repro.em.radiation import DieRadiator
    from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
    from repro.pdn.steady_state import PeriodicResponse
    from repro.platforms.base import Cluster, ClusterState


@dataclass
class SessionStats:
    """Hit/miss counters for every session cache (observability only)."""

    tf_hits: int = 0
    tf_misses: int = 0
    execute_hits: int = 0
    execute_misses: int = 0
    tilt_hits: int = 0
    tilt_misses: int = 0
    gain_hits: int = 0
    gain_misses: int = 0
    mask_hits: int = 0
    mask_misses: int = 0
    invalidations: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "tf_hits": self.tf_hits,
            "tf_misses": self.tf_misses,
            "execute_hits": self.execute_hits,
            "execute_misses": self.execute_misses,
            "tilt_hits": self.tilt_hits,
            "tilt_misses": self.tilt_misses,
            "gain_hits": self.gain_hits,
            "gain_misses": self.gain_misses,
            "mask_hits": self.mask_hits,
            "mask_misses": self.mask_misses,
            "invalidations": self.invalidations,
        }


class SimulationSession:
    """Cross-call caches for one simulation campaign.

    One session per experiment (an ``EMCharacterizer``, a GA fitness, a
    sweep) is the intended granularity; sharing a session across
    experiments against the same cluster compounds the reuse.  All
    cached values are deterministic pure functions of their keys, so
    caching never changes results -- the bit-equivalence tests in
    ``tests/chain/test_equivalence.py`` pin this.
    """

    def __init__(
        self,
        max_executions: int = 4096,
        max_grids: int = 1024,
        audit: Optional["DeterminismTracker"] = None,
    ):
        self.stats = SessionStats()
        self._max_executions = max_executions
        self._max_grids = max_grids
        self.audit = audit
        # cluster.uid -> (state_version, ClusterState)
        self._cluster_states: Dict[int, Tuple[int, "ClusterState"]] = {}
        # (cluster.uid, genome, active, iterations) -> ClusterExecution
        self._executions: Dict[Tuple, "ClusterExecution"] = {}
        # (cluster.uid, powered_cores, n_samples, sample_rate) -> (Z, H_I)
        self._tf_grids: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        # (radiator, grid_key) -> tilt array over the emission lines
        self._tilts: Dict[Tuple, np.ndarray] = {}
        # (analyzer_token, settings, grid_key) -> line gain array
        self._gains: Dict[Tuple, np.ndarray] = {}
        # (analyzer_token, settings, band) -> boolean bin mask
        self._band_masks: Dict[Tuple, np.ndarray] = {}
        # Weakref identity registry: id(analyzer) -> (weakref, token).
        # Entries self-remove when their analyzer is collected, so the
        # registry is bounded by the number of live analyzers.
        self._analyzer_tokens: Dict[
            int, Tuple["weakref.ref", int]
        ] = {}
        self._next_analyzer_token = 0

    # ------------------------------------------------------------------
    # identity + bounding helpers
    # ------------------------------------------------------------------
    def _analyzer_token(self, analyzer: "SpectrumAnalyzer") -> int:
        """Session-stable identity token for an analyzer, in O(1).

        Tokens come from a monotonic counter, so a live object's token
        can never be re-issued to another analyzer.  The address index
        is only a fast lookup: a hit counts solely when the weakly-held
        object *is* this analyzer, so a reused address (CPython
        re-issues ``id()`` after GC, audit rule R3) mints a fresh token
        instead of aliasing the dead object's entries.  The weakref
        death callback deletes the entry, which keeps a long-lived
        session -- a measurement service's lifetime profile -- from
        accumulating one registry row per analyzer it ever saw.
        (SpectrumAnalyzer is an eq-but-unfrozen dataclass and therefore
        unhashable, so it cannot key a dict directly.)
        """
        addr = id(analyzer)  # audit: ignore[R3]
        entry = self._analyzer_tokens.get(addr)
        if entry is not None and entry[0]() is analyzer:
            return entry[1]
        token = self._next_analyzer_token
        self._next_analyzer_token += 1
        registry = self._analyzer_tokens

        def _drop(_ref, registry=registry, addr=addr, token=token):
            # Only remove our own entry: a newer analyzer may already
            # occupy this (reused) address slot.
            current = registry.get(addr)
            if current is not None and current[1] == token:
                del registry[addr]

        registry[addr] = (weakref.ref(analyzer, _drop), token)
        return token

    @staticmethod
    def _bounded_put(cache: Dict, key, value, cap: int) -> None:
        """Insert with FIFO eviction; a cap of 0 disables the cache."""
        if cap <= 0:
            return
        while len(cache) >= cap:
            cache.pop(next(iter(cache)))
        cache[key] = value

    # ------------------------------------------------------------------
    # warm-up / cache priming
    # ------------------------------------------------------------------
    def warm_up(
        self, cluster: Optional["Cluster"] = None
    ) -> Dict[str, int]:
        """Prime the session's cheap deterministic entries.

        Called once per persistent GA worker at pool start (see
        :mod:`repro.ga.workers`) so the first dispatched shard runs
        against warm caches: with a ``cluster`` the operating-state
        snapshot is memoized immediately.  Only pure, RNG-free
        derivations may run here -- warming must never perturb a
        measurement stream, or the ``workers=N == workers=1``
        bit-identity contract breaks.  Returns a stats snapshot for
        the ``worker_warmup`` event.
        """
        if cluster is not None:
            self.cluster_state(cluster)
        return self.stats.snapshot()

    # ------------------------------------------------------------------
    # cluster state tracking
    # ------------------------------------------------------------------
    def cluster_state(self, cluster: "Cluster") -> "ClusterState":
        """The cluster's operating point, memoized by state version."""
        key = cluster.uid
        entry = self._cluster_states.get(key)
        version = cluster.state_version
        if entry is not None:
            if entry[0] == version:
                if self.audit is not None:
                    self.audit.check_hit(
                        "cluster_states", key, entry[1], cluster.state
                    )
                return entry[1]
            self.stats.invalidations += 1
        state = cluster.state()
        self._bounded_put(
            self._cluster_states, key, (version, state), self._max_grids
        )
        return state

    # ------------------------------------------------------------------
    # execute stage: schedule + per-cycle current, clock-independent
    # ------------------------------------------------------------------
    def execution(
        self,
        cluster: "Cluster",
        program: "LoopProgram",
        active_cores: int,
        clock_hz: float,
        iterations: int = 16,
        phase_offsets: Optional[Sequence[int]] = None,
    ) -> "ClusterExecution":
        """Steady-state execution of ``program`` on ``active_cores``.

        The schedule and the per-cycle current trace are independent of
        the operating point (amperes per cycle are fixed; the clock
        only sets the sample rate), so one cached execution serves
        every clock point of a sweep -- the cache key deliberately
        omits the clock and the entry is re-stamped with the item's
        ``clock_hz`` on the way out.
        """
        from repro.cpu.multicore import CoreModel, execute_on_cluster

        core = CoreModel(
            pipeline=cluster.pipeline,
            current_model=cluster.spec.current_model,
            clock_hz=clock_hz,
        )
        if phase_offsets is not None:
            # Phase studies are rare and offset-specific; don't cache.
            return execute_on_cluster(
                core,
                program,
                active_cores=active_cores,
                phase_offsets=phase_offsets,
                uncore_current_a=cluster.spec.uncore_current_a,
                iterations=iterations,
            )
        key = (cluster.uid, program.genome(), active_cores, iterations)
        cached = self._executions.get(key)
        hit = cached is not None
        if cached is None:
            self.stats.execute_misses += 1
            cached = execute_on_cluster(
                core,
                program,
                active_cores=active_cores,
                uncore_current_a=cluster.spec.uncore_current_a,
                iterations=iterations,
            )
            self._bounded_put(
                self._executions, key, cached, self._max_executions
            )
        else:
            self.stats.execute_hits += 1
        if cached.clock_hz != clock_hz:
            cached = replace(cached, clock_hz=clock_hz)
        if hit and self.audit is not None:
            # Compare post-restamp so both sides carry this call's
            # clock (the cache stores the first-seen clock by design).
            self.audit.check_hit(
                "executions",
                key,
                cached,
                lambda: execute_on_cluster(
                    core,
                    program,
                    active_cores=active_cores,
                    uncore_current_a=cluster.spec.uncore_current_a,
                    iterations=iterations,
                ),
            )
        return cached

    # ------------------------------------------------------------------
    # pdn stage: transfer-function grids hoisted out of the solver
    # ------------------------------------------------------------------
    def pdn_solve(
        self,
        cluster: "Cluster",
        powered_cores: int,
        voltage: float,
        load_current: np.ndarray,
        sample_rate_hz: float,
    ) -> "PeriodicResponse":
        """Steady-state rail response at an explicit operating point.

        The AC transfer-function grid is cached here, keyed by
        ``(cluster, powered_cores, n_samples, sample_rate)`` -- i.e. by
        the distinct cluster states a campaign visits -- so repeated
        solves at a revisited state never re-run the AC analysis.
        """
        from repro.platforms.base import _recentered

        solver = cluster.pdn.solver(powered_cores)
        key = (
            cluster.uid,
            powered_cores,
            load_current.size,
            sample_rate_hz,
        )
        transfer = self._tf_grids.get(key)
        if transfer is None:
            self.stats.tf_misses += 1
            transfer = solver.transfer_functions(
                load_current.size, sample_rate_hz
            )
            self._bounded_put(
                self._tf_grids, key, transfer, self._max_grids
            )
        else:
            self.stats.tf_hits += 1
            if self.audit is not None:
                self.audit.check_hit(
                    "tf_grids",
                    key,
                    transfer,
                    lambda: solver.transfer_functions(
                        load_current.size, sample_rate_hz
                    ),
                )
        response = solver.solve(
            load_current, sample_rate_hz, transfer=transfer
        )
        return _recentered(response, voltage)

    # ------------------------------------------------------------------
    # radiate / propagate / receive scalings
    # ------------------------------------------------------------------
    def radiator_tilt(
        self,
        radiator: "DieRadiator",
        frequencies_hz: np.ndarray,
        grid_key: Tuple,
    ) -> np.ndarray:
        """The radiator's frequency tilt over one harmonic grid."""
        key = (radiator, grid_key)
        tilt = self._tilts.get(key)
        if tilt is None:
            self.stats.tilt_misses += 1
            tilt = radiator.tilt(frequencies_hz)
            self._bounded_put(self._tilts, key, tilt, self._max_grids)
        else:
            self.stats.tilt_hits += 1
            if self.audit is not None:
                self.audit.check_hit(
                    "tilts",
                    key,
                    tilt,
                    lambda: radiator.tilt(frequencies_hz),
                )
        return tilt

    def line_gains(
        self,
        analyzer: "SpectrumAnalyzer",
        frequencies_hz: np.ndarray,
        grid_key: Tuple,
    ) -> np.ndarray:
        """Coupling x antenna gain over one grid's in-span lines."""
        key = (
            self._analyzer_token(analyzer),
            analyzer._settings_key(),
            grid_key,
        )
        gains = self._gains.get(key)
        if gains is None:
            self.stats.gain_misses += 1
            gains = analyzer.line_gains(frequencies_hz)
            self._bounded_put(self._gains, key, gains, self._max_grids)
        else:
            self.stats.gain_hits += 1
            if self.audit is not None:
                self.audit.check_hit(
                    "gains",
                    key,
                    gains,
                    lambda: analyzer.line_gains(frequencies_hz),
                )
        return gains

    def band_mask(
        self,
        analyzer: "SpectrumAnalyzer",
        band: Tuple[float, float],
    ) -> np.ndarray:
        """Boolean mask of the analyzer bins inside ``band``.

        Raises :class:`ValueError` for an inverted band
        (``band[0] > band[1]``) or non-finite endpoints -- both would
        otherwise yield an all-false mask that downstream code reads
        as "no power in band", mirroring the
        ``SpectrumTrace.power_at`` out-of-span contract.
        """
        lo, hi = float(band[0]), float(band[1])
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise ValueError(
                f"band endpoints must be finite, got ({band[0]!r}, "
                f"{band[1]!r})"
            )
        if lo > hi:
            raise ValueError(
                f"inverted band: {lo / 1e6:.3f} MHz > {hi / 1e6:.3f} "
                f"MHz (need band[0] <= band[1])"
            )
        key = (
            self._analyzer_token(analyzer),
            analyzer._settings_key(),
            tuple(band),
        )
        mask = self._band_masks.get(key)
        if mask is None:
            self.stats.mask_misses += 1
            centers = analyzer.bin_centers()
            mask = (centers >= band[0]) & (centers <= band[1])
            self._bounded_put(
                self._band_masks, key, mask, self._max_grids
            )
        else:
            self.stats.mask_hits += 1
            if self.audit is not None:
                centers = analyzer.bin_centers()
                self.audit.check_hit(
                    "band_masks",
                    key,
                    mask,
                    lambda: (centers >= band[0]) & (centers <= band[1]),
                )
        return mask
