"""Property-based invariants of island migration.

Migration must be a *permutation-equivariant exchange* of the global
genome multiset for every island count, topology and link set
hypothesis can draw:

- conservation: no genome is duplicated or lost -- the multiset of
  all genomes across islands is exactly permuted;
- size conservation: every island's population size is unchanged
  (the balanced in-degree == out-degree property of every topology);
- identity: an empty link set (one island, or everything excluded)
  leaves every population untouched;
- exclusion: a dead island's population is never read or written.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.ga.topology import TOPOLOGIES, migrate, migration_links

islands_counts = st.integers(min_value=1, max_value=6)
topologies = st.sampled_from(TOPOLOGIES)
intervals = st.one_of(
    st.none(), st.integers(min_value=1, max_value=10)
)


def _populations(islands: int, sizes) -> list:
    """Synthetic populations with globally unique genome labels."""
    return [
        [f"i{i}g{j}" for j in range(sizes[i])] for i in range(islands)
    ]


@st.composite
def island_worlds(draw):
    """(populations, topology) with sizes large enough for any
    topology's out-degree (all-to-all needs K-1 per island)."""
    islands = draw(islands_counts)
    topology = draw(topologies)
    floor = max(2, islands - 1)
    sizes = [
        draw(st.integers(min_value=floor, max_value=floor + 4))
        for _ in range(islands)
    ]
    return _populations(islands, sizes), topology


@settings(max_examples=60, deadline=None)
@given(world=island_worlds())
def test_migration_conserves_the_global_multiset(world):
    populations, topology = world
    links = migration_links(len(populations), topology)
    exchanged = migrate(populations, links)
    before = Counter(g for pop in populations for g in pop)
    after = Counter(g for pop in exchanged for g in pop)
    assert before == after


@settings(max_examples=60, deadline=None)
@given(world=island_worlds())
def test_migration_conserves_island_sizes(world):
    populations, topology = world
    links = migration_links(len(populations), topology)
    exchanged = migrate(populations, links)
    assert [len(p) for p in exchanged] == [len(p) for p in populations]


@settings(max_examples=60, deadline=None)
@given(world=island_worlds())
def test_migration_is_deterministic(world):
    populations, topology = world
    links = migration_links(len(populations), topology)
    assert migrate(populations, links) == migrate(populations, links)
    # ...and the link set itself is a pure function of (K, topology).
    assert links == migration_links(len(populations), topology)


@settings(max_examples=60, deadline=None)
@given(world=island_worlds())
def test_empty_links_are_identity(world):
    populations, _ = world
    assert migrate(populations, ()) == [list(p) for p in populations]


@settings(max_examples=60, deadline=None)
@given(
    world=island_worlds(),
    data=st.data(),
)
def test_excluded_islands_are_untouched(world, data):
    populations, topology = world
    islands = len(populations)
    excluded = frozenset(
        data.draw(
            st.sets(
                st.integers(min_value=0, max_value=islands - 1),
                max_size=islands,
            )
        )
    )
    links = migration_links(islands, topology, exclude=excluded)
    exchanged = migrate(populations, links)
    for i in excluded:
        assert exchanged[i] == list(populations[i])
    before = Counter(g for pop in populations for g in pop)
    after = Counter(g for pop in exchanged for g in pop)
    assert before == after


@settings(max_examples=40, deadline=None)
@given(
    islands=st.integers(min_value=1, max_value=5),
    topology=topologies,
)
def test_links_are_balanced_and_canonical(islands, topology):
    links = migration_links(islands, topology)
    outs = Counter(s for s, _ in links)
    ins = Counter(d for _, d in links)
    assert outs == ins
    assert list(links) == sorted(links)
    assert all(s != d for s, d in links)


@settings(max_examples=40, deadline=None)
@given(
    total=st.integers(min_value=2, max_value=64),
    islands=st.integers(min_value=1, max_value=8),
)
def test_population_split_conserves_total(total, islands):
    from repro.ga.islands import island_population_sizes

    if total < 2 * islands:
        return  # rejected split, covered by the unit suite
    sizes = island_population_sizes(total, islands)
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    assert list(sizes) == sorted(sizes, reverse=True)


@settings(max_examples=40, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=20),
    extra=st.integers(min_value=1, max_value=20),
    interval=intervals,
)
def test_segment_ends_cover_horizon_and_align(start, extra, interval):
    from repro.ga.islands import segment_ends

    total = start + extra
    ends = segment_ends(start, total, interval)
    assert ends[-1] == total
    assert all(a < b for a, b in zip(ends, ends[1:]))
    if interval is not None:
        # Every non-final boundary is a migration point, and the
        # boundaries are horizon-independent: a run truncated at any
        # boundary sees the same earlier boundaries.
        assert all(e % interval == 0 for e in ends[:-1])
        for cut in ends[:-1]:
            assert segment_ends(start, cut, interval) + segment_ends(
                cut, total, interval
            ) == ends
