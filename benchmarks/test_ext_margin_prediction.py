"""Extension: EM-based voltage-margin prediction (Section 10 (c)).

The paper's future work: predict a workload's voltage margin from its
EM emanations during conventional execution -- no undervolting of the
deployed system.  Calibrate on a subset of workloads (where V_MIN was
measured once, e.g. on a reference unit) and predict the V_MIN of
held-out workloads from a single passive EM reading each.
"""

import numpy as np

from repro.core.margin import EMMarginPredictor, MarginCalibrationPoint
from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.spec import spec_suite
from repro.workloads.stress import idle_workload

from benchmarks.conftest import paper_characterizer, print_header

CALIBRATION = ["gcc", "milc", "namd", "lbm", "hmmer", "astar"]
HOLDOUT = ["mcf", "povray", "sphinx3", "bzip2", "omnetpp", "h264ref"]


def test_ext_margin_prediction(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()
    predictor = EMMarginPredictor(paper_characterizer(71))
    tester = VminTester(a72, failure_model_for("cortex-a72"), seed=27)

    def run_study():
        points = []
        for wl in [idle_workload()] + spec_suite(
            a72.spec.isa, CALIBRATION
        ):
            amp = predictor.measure_amplitude(a72, wl)
            vmin = tester.run(wl, repeats=2).vmin
            points.append(MarginCalibrationPoint(wl.name, amp, vmin))
        predictor.fit(points)

        rows = []
        for wl in spec_suite(a72.spec.isa, HOLDOUT):
            predicted = predictor.predict_workload(a72, wl)
            actual = tester.run(wl, repeats=2).vmin
            rows.append(
                (wl.name, predicted.predicted_vmin, actual)
            )
        return points, rows

    points, rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print_header(
        "Extension: V_MIN prediction from passive EM readings (A72)"
    )
    print(
        f"  calibration: {len(points)} workloads, residual "
        f"{predictor.calibration_residual_v() * 1e3:.1f} mV"
    )
    print(f"{'workload':<12} {'predicted':>11} {'measured':>10} {'err':>8}")
    errors = []
    for name, predicted, actual in rows:
        err = predicted - actual
        errors.append(err)
        print(
            f"{name:<12} {predicted:>9.3f} V {actual:>8.3f} V "
            f"{err * 1e3:>+6.1f} mV"
        )
    rmse = float(np.sqrt(np.mean(np.square(errors))))
    print(f"  holdout RMSE: {rmse * 1e3:.1f} mV")
    # predictions land within ~2 undervolting steps on unseen workloads
    assert rmse < 0.020
    assert max(abs(e) for e in errors) < 0.035
