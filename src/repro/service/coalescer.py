"""Request coalescing: compatible pending jobs become one chain run.

The service executes jobs in strict submission order (one worker, one
shared :class:`~repro.chain.SimulationSession` per platform), which is
what makes results independent of *how* requests happened to arrive.
Coalescing exploits the chain's batch-first design on top of that
order: the dispatcher takes the longest **contiguous prefix** of the
pending queue whose jobs share a :class:`CompatKey` -- same platform,
same cluster state version, same analyzer settings, same band and
sample count -- and folds their items into a single
:class:`~repro.chain.ChainRequest`.

Only a contiguous prefix is eligible: skipping over an incompatible
job to batch a later compatible one would reorder the analyzer RNG
stream relative to sequential submission and break the service's
bit-identity contract.  The chain itself guarantees that a batch of N
items equals N sequential one-item runs bit for bit (per-stream RNG
draws happen in request order), so *any* partition of a submission
sequence into contiguous batches yields identical per-job results --
the property ``tests/property/test_property_service.py`` pins.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional, Tuple

from repro.service.jobs import Job


class CompatKey(NamedTuple):
    """Everything two jobs must share to ride one chain request.

    ``state_version`` keys the cluster's live operating state (the
    fallback for unset per-item overrides); ``analyzer_key`` is the
    analyzer's front-panel settings tuple; ``band`` / ``samples`` are
    request-level readout settings of the folded
    :class:`~repro.chain.ChainRequest`, so they cannot vary per item.
    """

    platform: str
    state_version: int
    analyzer_key: Tuple
    band: Tuple[float, float]
    samples: int


class Coalescer:
    """Bounded FIFO of pending jobs with prefix-run batch extraction."""

    def __init__(self, max_pending_jobs: int, max_batch_items: int):
        if max_pending_jobs < 1:
            raise ValueError("max_pending_jobs must be >= 1")
        if max_batch_items < 1:
            raise ValueError("max_batch_items must be >= 1")
        self.max_pending_jobs = max_pending_jobs
        self.max_batch_items = max_batch_items
        self._pending: Deque[Tuple[Job, Optional[CompatKey], int]] = (
            deque()
        )

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.max_pending_jobs

    def push(
        self, job: Job, key: Optional[CompatKey], items: int
    ) -> None:
        """Append a job with its compat key (``None`` = exclusive)."""
        self._pending.append((job, key, items))

    def remove(self, job_id: str) -> Optional[Job]:
        """Drop a queued job (cancellation); None if not queued."""
        for entry in self._pending:
            if entry[0].id == job_id:
                self._pending.remove(entry)
                return entry[0]
        return None

    def take_batch(self) -> List[Job]:
        """Pop the next batch: the head job plus every immediately
        following job with the same compat key, until the item budget
        is spent.  Exclusive jobs (``key=None``, e.g. virus runs)
        always come out alone."""
        if not self._pending:
            return []
        head, head_key, head_items = self._pending.popleft()
        batch = [head]
        if head_key is None:
            return batch
        budget = self.max_batch_items - head_items
        while self._pending:
            _, key, items = self._pending[0]
            if key != head_key or items > budget:
                break
            job, _, items = self._pending.popleft()
            batch.append(job)
            budget -= items
        return batch
