"""AMD Athlon II X4 645 desktop platform model.

Quad-core out-of-order x86-64 at 3.1 GHz / 1.4 V on an ASUS M5A78L LE
board whose on-package Kelvin pads allow direct rail probing with a
differential probe and bench scope.  Voltage and frequency are driven
through an Overdrive-style utility, which also ships the stability test
the paper compares against (see :mod:`repro.workloads.stress`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.current import CurrentModel
from repro.cpu.isa import ExecutionUnit
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.cpu.x86 import X86_ISA
from repro.instruments.probes import DifferentialProbe
from repro.pdn.models import AMD_ATHLON_PDN
from repro.platforms.base import Cluster, ClusterSpec, NoiseVisibility

ATHLON_UNITS: Dict[ExecutionUnit, int] = {
    ExecutionUnit.ALU: 3,
    ExecutionUnit.MUL: 1,
    ExecutionUnit.DIV: 1,
    ExecutionUnit.FPU: 2,
    ExecutionUnit.FDIV: 1,
    ExecutionUnit.SIMD: 2,
    ExecutionUnit.LSU: 2,
    ExecutionUnit.BRANCH: 1,
}

ATHLON_SPEC = ClusterSpec(
    name="amd-athlon-ii-x4-645",
    isa=X86_ISA,
    num_cores=4,
    microarchitecture="out-of-order",
    nominal_voltage=1.4,
    nominal_clock_hz=3.1e9,
    clock_step_hz=100.0e6,
    min_clock_hz=800.0e6,
    technology_nm=45,
    visibility=NoiseVisibility.KELVIN_PADS,
    has_scl=False,
    pdn_params=AMD_ATHLON_PDN,
    current_model=CurrentModel(
        base_current_a=1.0, amps_per_energy=0.55, frontend_energy=0.3
    ),
    uncore_current_a=1.0,
)


class Overdrive:
    """AMD Overdrive-style voltage/frequency control utility."""

    def __init__(self, cluster: Cluster):
        self._cluster = cluster

    def set_cpu_frequency(self, clock_hz: float) -> None:
        self._cluster.set_clock(clock_hz)

    def set_cpu_voltage(self, volts: float) -> None:
        self._cluster.set_voltage(volts)

    def reset_defaults(self) -> None:
        self._cluster.reset()


@dataclass
class AMDDesktop:
    """The desktop platform: the Athlon cluster plus its bench probing."""

    cpu: Cluster
    probe: DifferentialProbe
    overdrive: Overdrive = field(init=False)

    def __post_init__(self) -> None:
        self.overdrive = Overdrive(self.cpu)

    @property
    def clusters(self) -> Dict[str, Cluster]:
        return {"amd-athlon-ii-x4-645": self.cpu}


def make_amd_desktop() -> AMDDesktop:
    """Fresh AMD desktop model at nominal operating point."""
    cpu = Cluster(
        ATHLON_SPEC,
        OutOfOrderPipeline(
            width=3,
            window=72,
            rob_size=168,
            unit_counts=ATHLON_UNITS,
            name="athlon",
        ),
    )
    return AMDDesktop(cpu=cpu, probe=DifferentialProbe())
