"""Ablation: the measurement chain's robustness knobs.

Two design choices from the paper's setup:

1. **RMS of 30 samples** (Section 3.1b): the GA metric averages 30
   sweeps.  Single-sweep scoring is noisy enough to misrank individuals
   whose true amplitudes differ by a few dB.
2. **Antenna placement** (Section 4): the antenna sits 5-10 cm from the
   CPU, on the lower PCB side.  Moving it away drops the received
   signal with the near-field law until the virus line sinks toward the
   noise floor.
"""

import numpy as np

from repro.em.propagation import NearFieldCoupling
from repro.em.radiation import EmissionSpectrum
from repro.instruments.spectrum_analyzer import (
    SpectrumAnalyzer,
    watts_to_dbm,
)

from benchmarks.conftest import print_header


def two_close_lines(delta_db=0.5):
    """Two emissions whose true banded powers differ by ``delta_db``.

    Amplitudes sit just above the displayed noise floor -- the regime
    of a GA's early generations, where individuals are weak and the
    averaging matters most.
    """
    weak_amp = 8.0e-6
    strong_amp = weak_amp * 10 ** (delta_db / 20.0)
    return (
        EmissionSpectrum(np.array([67e6]), np.array([weak_amp])),
        EmissionSpectrum(np.array([67e6]), np.array([strong_amp])),
    )


def test_ablation_rms_of_30_sampling(benchmark):
    weak, strong = two_close_lines(delta_db=0.5)

    def misrank_rates():
        rates = {}
        for samples in (1, 5, 30):
            sa = SpectrumAnalyzer(rng=np.random.default_rng(7))
            wrong = 0
            trials = 200
            for _ in range(trials):
                if sa.max_amplitude(weak, samples=samples) >= (
                    sa.max_amplitude(strong, samples=samples)
                ):
                    wrong += 1
            rates[samples] = wrong / trials
        return rates

    rates = benchmark.pedantic(misrank_rates, rounds=1, iterations=1)
    print_header(
        "Ablation: misranking rate of two near-floor individuals "
        "0.5 dB apart"
    )
    for samples, rate in rates.items():
        print(f"  {samples:3d} sweep(s): misranked {rate * 100:5.1f}%")
    # averaging suppresses misranking: 30 sweeps at least halves the
    # single-sweep error in this near-floor regime
    assert rates[30] <= rates[5] + 0.02
    assert rates[1] > 0.1
    assert rates[30] < 0.5 * rates[1]


def test_ablation_antenna_distance(benchmark):
    emission = EmissionSpectrum(np.array([67e6]), np.array([1.0e-4]))

    def snr_by_distance():
        rows = []
        for distance in (0.05, 0.07, 0.10, 0.20, 0.40):
            sa = SpectrumAnalyzer(
                coupling=NearFieldCoupling(distance_m=distance),
                rng=np.random.default_rng(3),
            )
            trace = sa.sweep(emission)
            _, peak_dbm = trace.peak()
            floor = float(np.median(trace.power_dbm))
            rows.append((distance, peak_dbm, peak_dbm - floor))
        return rows

    rows = benchmark.pedantic(snr_by_distance, rounds=1, iterations=1)
    print_header("Ablation: received virus line vs antenna distance")
    print(f"{'distance':>10} {'peak':>10} {'SNR':>9}")
    for distance, peak, snr in rows:
        print(
            f"{distance * 100:>7.0f} cm {peak:>7.1f} dBm {snr:>6.1f} dB"
        )
    snrs = [snr for _, _, snr in rows]
    # signal falls monotonically with distance
    assert all(b <= a + 0.5 for a, b in zip(snrs, snrs[1:]))
    # the paper's 5-10 cm placement gives a comfortably visible line
    assert snrs[0] > 20.0 and snrs[2] > 10.0
    # far placement loses it
    assert snrs[-1] < snrs[0] - 20.0
