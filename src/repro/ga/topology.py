"""Deterministic migration topologies for the island-model GA.

An island campaign (:mod:`repro.ga.islands`) periodically exchanges
champions between sub-populations.  This module defines *which*
islands exchange (:func:`migration_links`) and *how* the exchange is
applied to their populations (:func:`migrate`), both as pure functions
of their inputs so that every (island count, topology) combination has
exactly one migration outcome.

Three classic topologies are supported:

``ring``
    Island ``i`` sends to island ``(i + 1) % K`` -- one emigrant out,
    one immigrant in, per island per migration.
``star``
    The hub (lowest-numbered island) exchanges with every leaf: the
    hub sends one emigrant to each leaf and receives one from each, so
    champions spread in two hops instead of up to ``K - 1``.
``all-to-all``
    Every ordered pair exchanges; each island sends ``K - 1`` emigrants
    and receives ``K - 1`` immigrants.

Every topology is *balanced* -- each island's in-degree equals its
out-degree -- which is what makes migration a pure permutation of the
global genome multiset: no genome is duplicated, none is lost, and
every island's population size is conserved.  The property suite
(``tests/property/test_property_islands.py``) pins this for arbitrary
(K, topology) drawn by hypothesis.

Fault handling composes through ``exclude``: when an island is down,
the topology is recomputed over the *alive* subset (ring of survivors,
hub re-elected as the lowest alive index), so the balance invariant --
and therefore determinism of the retried migration -- survives
failures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple, TypeVar

#: Supported topology names, in CLI ``choices`` order.
TOPOLOGIES: Tuple[str, ...] = ("ring", "star", "all-to-all")

T = TypeVar("T")


def migration_links(
    islands: int,
    topology: str,
    exclude: FrozenSet[int] = frozenset(),
) -> Tuple[Tuple[int, int], ...]:
    """Directed ``(src, dst)`` migration links for one exchange.

    The returned tuple is canonically sorted, so callers may apply the
    links in order and obtain a deterministic exchange.  ``exclude``
    removes dead islands: the topology is rebuilt over the alive
    subset.  Fewer than two alive islands yields no links.
    """
    if islands < 1:
        raise ValueError(f"islands must be >= 1, got {islands}")
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; expected one of {TOPOLOGIES}"
        )
    bad = [i for i in exclude if not 0 <= i < islands]
    if bad:
        raise ValueError(f"excluded islands out of range: {sorted(bad)}")
    alive = [i for i in range(islands) if i not in exclude]
    if len(alive) < 2:
        return ()
    links: List[Tuple[int, int]] = []
    if topology == "ring":
        for pos, src in enumerate(alive):
            links.append((src, alive[(pos + 1) % len(alive)]))
    elif topology == "star":
        hub = alive[0]
        for leaf in alive[1:]:
            links.append((hub, leaf))
            links.append((leaf, hub))
    else:  # all-to-all
        for src in alive:
            for dst in alive:
                if src != dst:
                    links.append((src, dst))
    return tuple(sorted(links))


def migrate(
    populations: Sequence[Sequence[T]],
    links: Sequence[Tuple[int, int]],
) -> List[List[T]]:
    """Apply one champion exchange and return the new populations.

    For each link ``(src, dst)`` -- processed in the given order --
    the emigrant is the lowest not-yet-sent index of ``src``'s
    population.  Index 0 is the island's reigning champion (the GA
    engine's elitism places the previous generation's best at slot 0
    of every bred population), so ring migration sends exactly the
    champion, and higher-degree topologies send the next elites in
    rank order without re-evaluating anything.

    Emigrants are removed from their source and immigrants are placed
    at the *front* of their destination (in link order), keeping the
    exchange a pure permutation of the global multiset.  Balanced link
    sets (everything :func:`migration_links` produces) therefore
    conserve every island's population size.

    Raises ``ValueError`` if a link references a missing island, a
    source must send more emigrants than it has genomes, or the link
    set is unbalanced for some island.
    """
    out_degree: Dict[int, int] = {}
    in_degree: Dict[int, int] = {}
    for src, dst in links:
        for idx in (src, dst):
            if not 0 <= idx < len(populations):
                raise ValueError(
                    f"link ({src}, {dst}) references island {idx}, but "
                    f"only {len(populations)} populations were given"
                )
        if src == dst:
            raise ValueError(f"self-link ({src}, {dst}) is not allowed")
        out_degree[src] = out_degree.get(src, 0) + 1
        in_degree[dst] = in_degree.get(dst, 0) + 1
    for island in set(out_degree) | set(in_degree):
        sends = out_degree.get(island, 0)
        receives = in_degree.get(island, 0)
        if sends != receives:
            raise ValueError(
                f"unbalanced link set: island {island} sends {sends} "
                f"but receives {receives}"
            )
        if sends > len(populations[island]):
            raise ValueError(
                f"island {island} must send {sends} emigrants but has "
                f"only {len(populations[island])} genomes"
            )
    sent: Dict[int, int] = {}
    emigrants: List[T] = []
    for src, _dst in links:
        emigrants.append(populations[src][sent.get(src, 0)])
        sent[src] = sent.get(src, 0) + 1
    result: List[List[T]] = [
        list(pop[sent.get(i, 0):]) for i, pop in enumerate(populations)
    ]
    # Immigrants land at the front of the destination, in link order:
    # slot 0 of a post-migration population is the first immigrant.
    arrivals: Dict[int, List[T]] = {}
    for (src, dst), genome in zip(links, emigrants):
        arrivals.setdefault(dst, []).append(genome)
    for dst, incoming in arrivals.items():
        result[dst] = incoming + result[dst]
    return result
