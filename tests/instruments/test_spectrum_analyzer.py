"""Unit tests for the spectrum analyzer model."""

import numpy as np
import pytest

from repro.em.propagation import AmbientEnvironment
from repro.em.radiation import EmissionSpectrum
from repro.instruments.spectrum_analyzer import (
    SpectrumAnalyzer,
    SpectrumTrace,
    dbm_to_watts,
    watts_to_dbm,
)


def analyzer(seed=0, **kwargs):
    return SpectrumAnalyzer(rng=np.random.default_rng(seed), **kwargs)


def single_line(freq=100e6, amp=1e-3):
    return EmissionSpectrum(np.array([freq]), np.array([amp]))


class TestUnits:
    def test_dbm_round_trip(self):
        assert dbm_to_watts(float(watts_to_dbm(np.array(1e-6)))) == (
            pytest.approx(1e-6)
        )

    def test_zero_watts_clamped(self):
        assert watts_to_dbm(np.array(0.0)) > -210.0


class TestConfiguration:
    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            analyzer(start_hz=200e6, stop_hz=100e6)

    def test_invalid_rbw_rejected(self):
        with pytest.raises(ValueError):
            analyzer(rbw_hz=0.0)

    def test_bin_centers_cover_span(self):
        sa = analyzer()
        centers = sa.bin_centers()
        assert centers[0] >= sa.start_hz
        assert centers[-1] <= sa.stop_hz
        assert centers.size == pytest.approx(
            (sa.stop_hz - sa.start_hz) / sa.rbw_hz, abs=1
        )


class TestSweep:
    def test_line_appears_at_correct_bin(self):
        sa = analyzer()
        trace = sa.sweep(single_line(freq=100e6))
        peak_f, peak_dbm = trace.peak()
        assert peak_f == pytest.approx(100e6, abs=2 * sa.rbw_hz)
        assert peak_dbm > -60.0

    def test_no_emission_shows_noise_floor(self):
        sa = analyzer()
        trace = sa.sweep(EmissionSpectrum(np.empty(0), np.empty(0)))
        floor = sa.environment.noise_floor_dbm
        assert np.median(trace.power_dbm) == pytest.approx(floor, abs=2.0)

    def test_out_of_span_line_ignored(self):
        sa = analyzer()
        trace = sa.sweep(single_line(freq=1e9))
        assert trace.power_dbm.max() < -80.0

    def test_power_at_lookup(self):
        sa = analyzer()
        trace = sa.sweep(single_line(freq=120e6))
        assert trace.power_at(120e6) == pytest.approx(
            trace.peak()[1], abs=3.0
        )

    def test_power_at_outside_span_raises(self):
        sa = analyzer()
        trace = sa.sweep(single_line(freq=120e6))
        with pytest.raises(ValueError, match="outside trace"):
            trace.power_at(sa.stop_hz + 10 * sa.rbw_hz)
        with pytest.raises(ValueError, match="outside trace"):
            trace.power_at(sa.start_hz - 10 * sa.rbw_hz)

    def test_power_at_empty_trace_raises(self):
        trace = SpectrumTrace(np.empty(0), np.empty(0))
        with pytest.raises(ValueError, match="empty trace"):
            trace.power_at(100e6)

    def test_banded_peak(self):
        sa = analyzer()
        two = EmissionSpectrum(
            np.array([60e6, 150e6]), np.array([1e-3, 2e-3])
        )
        trace = sa.sweep(two)
        f_low, _ = trace.peak(band=(50e6, 100e6))
        assert f_low == pytest.approx(60e6, abs=2 * sa.rbw_hz)
        with pytest.raises(ValueError):
            trace.peak(band=(300e6, 400e6))


class TestMaxAmplitude:
    def test_stronger_line_scores_higher(self):
        sa = analyzer()
        weak = sa.max_amplitude(single_line(amp=0.5e-3), samples=10)
        strong = sa.max_amplitude(single_line(amp=2e-3), samples=10)
        assert strong > weak

    def test_rms_metric_is_stable(self):
        """30-sample RMS varies far less than single sweeps."""
        sa = analyzer()
        emission = single_line(amp=0.2e-4)
        singles = [
            sa.max_amplitude(emission, samples=1) for _ in range(20)
        ]
        rms30 = [
            sa.max_amplitude(emission, samples=30) for _ in range(20)
        ]
        assert np.std(rms30) < np.std(singles)

    def test_quadratic_in_field_amplitude(self):
        """Power metric scales with the square of the field (Section 2.2)."""
        sa = analyzer(environment=AmbientEnvironment(noise_floor_dbm=-160))
        p1 = sa.max_amplitude(single_line(amp=1e-3), samples=4)
        p2 = sa.max_amplitude(single_line(amp=2e-3), samples=4)
        assert p2 / p1 == pytest.approx(4.0, rel=0.01)

    def test_band_without_bins_rejected(self):
        sa = analyzer()
        with pytest.raises(ValueError):
            sa.max_amplitude(single_line(), band=(1e9, 2e9))

    def test_dbm_variant_consistent(self):
        sa = analyzer()
        emission = single_line()
        w = sa.max_amplitude(emission, samples=5)
        db = sa.max_amplitude_dbm(emission, samples=5)
        assert db == pytest.approx(float(watts_to_dbm(np.array(w))), abs=1.5)


class TestMeasurementTimeAccounting:
    def test_sweep_time_proportional_to_bins(self):
        sa = analyzer()
        full = sa.sweep_time_s()
        narrow = sa.sweep_time_s(band=(60e6, 75e6))
        assert narrow < 0.2 * full
        assert full == pytest.approx(
            sa.bin_centers().size * sa.dwell_s_per_bin
        )

    def test_max_amplitude_accumulates_time(self):
        sa = analyzer()
        sa.max_amplitude(single_line(), samples=30)
        full_each = sa.sweep_time_s()
        assert sa.total_measurement_time_s == pytest.approx(
            30 * full_each
        )

    def test_banded_measurement_is_cheaper(self):
        sa_full = analyzer()
        sa_full.max_amplitude(single_line(), samples=10)
        sa_band = analyzer()
        sa_band.max_amplitude(
            single_line(), band=(90e6, 110e6), samples=10
        )
        assert sa_band.total_measurement_time_s < (
            0.3 * sa_full.total_measurement_time_s
        )

    def test_paper_scale_measurement_latency(self):
        """Full-span 30-sample measurement costs ~18 s (Section 3.2)."""
        sa = analyzer()
        sa.max_amplitude(single_line(), samples=30)
        assert 10.0 < sa.total_measurement_time_s < 30.0
