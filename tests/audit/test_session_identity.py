"""Cache-identity and bounding regressions the audit rules flagged.

The session used to key per-object caches by ``id(...)``; CPython
reuses addresses after garbage collection, so a session outliving a
cluster could serve the dead cluster's entries to a newly allocated
one.  Keys now come from ``Cluster.uid`` (process-monotonic) and a
strong-reference analyzer token registry.  Every cache is also
FIFO-bounded, including the previously crashing ``max_executions=0``
edge.
"""

import gc

import numpy as np
import pytest

from repro.chain.session import SimulationSession
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.platforms.registry import make_cluster
from repro.workloads.loops import high_low_program


class TestClusterUid:
    def test_uids_are_unique_and_monotonic(self):
        a = make_cluster("a53")
        b = make_cluster("a72")
        assert a.uid != b.uid
        assert b.uid > a.uid

    def test_uid_never_reused_after_gc(self):
        seen = set()
        for _ in range(5):
            cluster = make_cluster("a53")
            assert cluster.uid not in seen
            seen.add(cluster.uid)
            del cluster
            gc.collect()


class TestAliasingRegression:
    def test_session_outliving_clusters_never_aliases(self):
        """Allocate/drop clusters in a loop against one long-lived
        session: each fresh cluster must get its own state snapshot,
        never a dead predecessor's (the historical ``id()`` key bug
        required only an address reuse plus a matching
        ``state_version``, both of which this loop provokes)."""
        session = SimulationSession()
        for name in ["a53", "a72", "amd"] * 3:
            cluster = make_cluster(name)
            cluster.set_clock(cluster.spec.allowed_clocks_hz()[0])
            assert session.cluster_state(cluster) == cluster.state()
            del cluster
            gc.collect()

    def test_distinct_analyzers_get_distinct_tokens(self):
        session = SimulationSession()
        a = SpectrumAnalyzer(rng=np.random.default_rng(1))
        b = SpectrumAnalyzer(rng=np.random.default_rng(1))
        # Same settings, same seed -- still distinct instruments.
        assert a._settings_key() == b._settings_key()
        assert session._analyzer_token(a) != session._analyzer_token(b)
        assert session._analyzer_token(a) == session._analyzer_token(a)

    def test_analyzer_registry_is_weak_and_never_reissues(self):
        """A dead analyzer's registry entry is dropped (no leak), but
        its token is never minted again: the counter is monotonic, so
        an address-reusing successor gets a strictly newer token."""
        session = SimulationSession()
        issued = set()
        for _ in range(50):
            analyzer = SpectrumAnalyzer(rng=np.random.default_rng(2))
            token = session._analyzer_token(analyzer)
            assert token not in issued  # never re-issued
            issued.add(token)
            # Stable while alive.
            assert session._analyzer_token(analyzer) == token
            del analyzer
            gc.collect()
        # Bounded: every dropped analyzer's entry self-removed.
        assert len(session._analyzer_tokens) == 0
        assert session._next_analyzer_token == 50

    def test_registry_bounded_under_churn_with_survivors(self):
        """Long-lived-session profile: many analyzers come and go
        through the public cache API while a few survive.  The
        registry must end bounded by the survivors, with the
        survivors' tokens stable throughout."""
        session = SimulationSession()
        survivors = [
            SpectrumAnalyzer(rng=np.random.default_rng(i))
            for i in range(3)
        ]
        tokens = [session._analyzer_token(a) for a in survivors]
        for _ in range(100):
            transient = SpectrumAnalyzer(rng=np.random.default_rng(9))
            session.band_mask(transient, (60e6, 80e6))
            del transient
            gc.collect()
        assert len(session._analyzer_tokens) == len(survivors)
        assert [
            session._analyzer_token(a) for a in survivors
        ] == tokens


class TestBandMaskValidation:
    """band_mask must reject bands that would silently mask nothing."""

    def setup_method(self):
        self.session = SimulationSession()
        self.analyzer = SpectrumAnalyzer(rng=np.random.default_rng(0))

    def test_inverted_band_raises(self):
        with pytest.raises(ValueError, match="inverted band"):
            self.session.band_mask(self.analyzer, (200.0e6, 50.0e6))

    @pytest.mark.parametrize(
        "band",
        [
            (float("nan"), 200.0e6),
            (50.0e6, float("nan")),
            (float("nan"), float("nan")),
            (float("inf"), 200.0e6),
            (50.0e6, float("-inf")),
        ],
    )
    def test_non_finite_endpoints_raise(self, band):
        with pytest.raises(ValueError, match="finite"):
            self.session.band_mask(self.analyzer, band)

    def test_valid_band_unchanged(self):
        mask = self.session.band_mask(self.analyzer, (60.0e6, 80.0e6))
        centers = self.analyzer.bin_centers()
        np.testing.assert_array_equal(
            mask, (centers >= 60.0e6) & (centers <= 80.0e6)
        )
        assert mask.any()

    def test_degenerate_equal_endpoints_allowed(self):
        # lo == hi is a legal (if narrow) band, not an inversion.
        mask = self.session.band_mask(self.analyzer, (70.0e6, 70.0e6))
        assert mask.sum() <= 1


class TestFifoEviction:
    def exec_args(self, cluster):
        return dict(
            program=high_low_program(cluster.spec.isa),
            active_cores=1,
            clock_hz=cluster.clock_hz,
        )

    def test_executions_evict_in_insertion_order(self):
        cluster = make_cluster("a53")
        session = SimulationSession(max_executions=2)
        args = self.exec_args(cluster)
        for iterations in (16, 17, 18):
            session.execution(cluster, iterations=iterations, **args)
        assert len(session._executions) == 2
        kept_iterations = [key[3] for key in session._executions]
        assert kept_iterations == [17, 18]  # 16 was first in, first out

    def test_post_eviction_recompute_is_identical(self):
        cluster = make_cluster("a53")
        session = SimulationSession(max_executions=2)
        args = self.exec_args(cluster)
        first = session.execution(cluster, iterations=16, **args)
        before = session.stats.execute_misses
        session.execution(cluster, iterations=17, **args)
        session.execution(cluster, iterations=18, **args)
        again = session.execution(cluster, iterations=16, **args)
        assert session.stats.execute_misses == before + 3  # recomputed
        np.testing.assert_array_equal(
            first.load_current, again.load_current
        )
        assert first.clock_hz == again.clock_hz

    def test_zero_capacity_disables_cache_without_crashing(self):
        # The pre-fix eviction popped from an empty dict at cap 0.
        cluster = make_cluster("a53")
        session = SimulationSession(max_executions=0)
        args = self.exec_args(cluster)
        first = session.execution(cluster, iterations=16, **args)
        second = session.execution(cluster, iterations=16, **args)
        assert session._executions == {}
        assert session.stats.execute_hits == 0
        np.testing.assert_array_equal(
            first.load_current, second.load_current
        )

    def test_grid_caches_are_bounded(self):
        session = SimulationSession(max_grids=1)
        analyzer = SpectrumAnalyzer(rng=np.random.default_rng(3))
        session.band_mask(analyzer, (50e6, 200e6))
        session.band_mask(analyzer, (60e6, 150e6))
        assert len(session._band_masks) == 1
        (key,) = session._band_masks
        assert key[2] == (60e6, 150e6)  # FIFO kept the newest

    def test_bounded_mask_still_correct_after_eviction(self):
        session = SimulationSession(max_grids=1)
        analyzer = SpectrumAnalyzer(rng=np.random.default_rng(3))
        reference = session.band_mask(analyzer, (50e6, 200e6)).copy()
        session.band_mask(analyzer, (60e6, 150e6))
        np.testing.assert_array_equal(
            session.band_mask(analyzer, (50e6, 200e6)), reference
        )
