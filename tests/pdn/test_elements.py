"""Unit tests for circuit element definitions."""

import pytest

from repro.pdn.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)


class TestElementValidation:
    def test_resistor_requires_positive_resistance(self):
        with pytest.raises(ValueError, match="resistance"):
            Resistor("r1", "a", "b", resistance=0.0)
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", resistance=-1.0)

    def test_capacitor_requires_positive_capacitance(self):
        with pytest.raises(ValueError, match="capacitance"):
            Capacitor("c1", "a", "b", capacitance=0.0)

    def test_inductor_requires_positive_inductance(self):
        with pytest.raises(ValueError, match="inductance"):
            Inductor("l1", "a", "b", inductance=-1e-9)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Resistor("r1", "a", "a", resistance=1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Resistor("", "a", "b", resistance=1.0)

    def test_valid_elements_constructed(self):
        r = Resistor("r1", "a", "0", resistance=2.0)
        assert r.resistance == 2.0
        c = Capacitor("c1", "a", "0", capacitance=1e-9)
        assert c.capacitance == 1e-9
        l = Inductor("l1", "a", "b", inductance=1e-12)
        assert l.inductance == 1e-12
        v = VoltageSource("v1", "a", "0", voltage=1.0)
        assert v.voltage == 1.0


class TestCurrentSource:
    def test_constant_current(self):
        s = CurrentSource("i1", "a", "0", current=2.5)
        assert s.value_at(0.0) == 2.5
        assert s.value_at(1.0) == 2.5

    def test_time_varying_current(self):
        s = CurrentSource("i1", "a", "0", current=lambda t: 3.0 * t)
        assert s.value_at(0.0) == 0.0
        assert s.value_at(2.0) == pytest.approx(6.0)

    def test_waveform_returns_float(self):
        s = CurrentSource("i1", "a", "0", current=lambda t: 1)
        assert isinstance(s.value_at(0.5), float)
