"""Figure 11: fast EM resonance exploration on the Cortex-A72.

Paper: sweeping the CPU clock from 1.2 GHz down modulates the high/low
loop's frequency; the EM spike amplitude maximizes near 70 MHz with
both cores powered and near 85 MHz with one core powered, matching the
SCL result in ~15 minutes instead of a multi-hour GA run.
"""

from repro.core.resonance import ResonanceSweep

from benchmarks.conftest import paper_characterizer, print_header

CLOCKS = [1.2e9 - k * 20e6 for k in range(0, 54)]


def test_fig11_em_loop_sweep(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()
    sweep = ResonanceSweep(paper_characterizer(31), samples_per_point=5)

    def regenerate():
        results = sweep.power_gating_study(
            a72, core_counts=(2, 1), clocks_hz=CLOCKS
        )
        return results

    two, one = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 11: EM loop-frequency sweep on the Cortex-A72")
    freqs2, amps2 = two.series()
    print(f"{'loop f':>9} {'amplitude C0C1':>16}")
    for i in range(0, freqs2.size, 5):
        print(f"{freqs2[i] / 1e6:>6.1f} MHz {amps2[i]:>13.3e} W")
    res2 = two.resonance_hz()
    res1 = one.resonance_hz()
    print(
        f"  C0C1 peak at {res2 / 1e6:.1f} MHz (paper: ~70 MHz); "
        f"C0 peak at {res1 / 1e6:.1f} MHz (paper: ~85 MHz)"
    )
    assert 62e6 <= res2 <= 74e6
    assert 78e6 <= res1 <= 90e6
    assert res1 > res2
