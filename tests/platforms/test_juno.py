"""Unit tests for the Juno board model."""

import pytest

from repro.platforms.base import NoiseVisibility
from repro.platforms.juno import make_juno_board


class TestBoardComposition:
    def test_cluster_specs_match_table1(self, juno_board):
        a72 = juno_board.a72.spec
        assert a72.num_cores == 2
        assert a72.nominal_clock_hz == 1.2e9
        assert a72.nominal_voltage == 1.0
        assert a72.technology_nm == 16
        assert a72.visibility is NoiseVisibility.OC_DSO
        a53 = juno_board.a53.spec
        assert a53.num_cores == 4
        assert a53.nominal_clock_hz == 0.95e9
        assert a53.visibility is NoiseVisibility.NONE

    def test_a72_has_scl_a53_does_not(self, juno_board):
        assert juno_board.a72.spec.has_scl
        assert not juno_board.a53.spec.has_scl

    def test_clusters_mapping(self, juno_board):
        assert set(juno_board.clusters) == {"cortex-a72", "cortex-a53"}

    def test_microarchitectures(self, juno_board):
        assert juno_board.a72.spec.microarchitecture == "out-of-order"
        assert juno_board.a53.spec.microarchitecture == "in-order"


class TestSCP:
    def test_scp_controls_frequency(self, juno_board):
        juno_board.scp.set_frequency("cortex-a72", 1.0e9)
        assert juno_board.a72.clock_hz == 1.0e9
        juno_board.scp.reset()
        assert juno_board.a72.clock_hz == 1.2e9

    def test_scp_controls_voltage_and_gating(self, juno_board):
        juno_board.scp.set_voltage("cortex-a53", 0.9)
        juno_board.scp.power_gate("cortex-a53", 2)
        assert juno_board.a53.voltage == 0.9
        assert juno_board.a53.powered_cores == 2
        juno_board.scp.reset()

    def test_unknown_cluster_raises(self, juno_board):
        with pytest.raises(KeyError):
            juno_board.scp.set_frequency("cortex-a99", 1e9)


class TestSeparateVoltageDomains:
    def test_pdn_models_are_independent(self, juno_board):
        assert juno_board.a72.pdn is not juno_board.a53.pdn

    def test_a72_gating_does_not_touch_a53(self, juno_board):
        juno_board.a72.power_gate(1)
        assert juno_board.a53.powered_cores == 4
        juno_board.scp.reset()

    def test_fresh_boards_are_isolated(self):
        b1 = make_juno_board()
        b2 = make_juno_board()
        b1.a72.set_voltage(0.9)
        assert b2.a72.voltage == 1.0
