"""Deterministic fault scheduling: FaultSpec, FaultPlan, FaultInjector.

A :class:`FaultPlan` is a declarative, JSON-serializable schedule of
faults; a :class:`FaultInjector` is the armed runtime object that chain
stages, workers and checkpoint IO call into at their *sites*.  Sites
are dotted names matched with :func:`fnmatch.fnmatch` patterns::

    chain.execute  chain.current  chain.pdn  chain.radiate
    chain.propagate  chain.receive          (SignalPath stage boundaries)
    worker.shard                            (per shard, inside a worker)
    checkpoint.save  checkpoint.load        (GA checkpoint IO)
    island.<i>.segment                      (before island i runs a
                                             segment; per-island
                                             injector replicas)

Scheduling is deterministic: every spec keeps its own per-injector
visit counter, and either fires on an explicit visit window
(``at_visit`` .. ``at_visit + times - 1``) or samples a seeded RNG at
``rate`` per visit (for chaos runs), capped at ``times`` firings.  A
disarmed injector (no specs) costs one attribute check per visit, so
production paths call :meth:`FaultInjector.visit` unconditionally.

Injectors ship to worker processes by pickling alongside the fitness;
each worker therefore owns an independent copy with fresh counters --
a ``worker.shard`` spec with ``at_visit=0`` makes every worker fail its
first shard, which is exactly the "flaky pool" chaos scenario.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.errors import FAULT_KINDS, FaultError

FAULT_PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where, what, and when it fires.

    ``at_visit`` selects a deterministic window of matching visits
    (0-based); ``rate`` instead samples the plan's seeded RNG per
    visit.  ``times`` bounds total firings in both modes.
    """

    site: str
    kind: str = "transient"
    at_visit: Optional[int] = None
    times: int = 1
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.at_visit is not None and self.at_visit < 0:
            raise ValueError("at_visit must be >= 0")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.at_visit is None and self.rate == 0.0:
            raise ValueError("spec needs at_visit or a non-zero rate")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "at_visit": self.at_visit,
            "times": self.times,
            "rate": self.rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        try:
            return cls(
                site=str(data["site"]),
                kind=str(data.get("kind", "transient")),
                at_visit=(
                    None
                    if data.get("at_visit") is None
                    else int(data["at_visit"])
                ),
                times=int(data.get("times", 1)),
                rate=float(data.get("rate", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed fault spec: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": FAULT_PLAN_VERSION,
            "kind": "fault-plan",
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if data.get("kind") != "fault-plan":
            raise ValueError("not a fault plan")
        if data.get("format_version") != FAULT_PLAN_VERSION:
            raise ValueError(
                f"unsupported fault-plan version "
                f"{data.get('format_version')!r}"
            )
        return cls(
            specs=tuple(
                FaultSpec.from_dict(s) for s in data.get("specs", ())
            ),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a fault plan from a JSON file (the CLI ``--fault-plan``)."""
    try:
        return FaultPlan.from_json(
            Path(path).read_text(encoding="utf-8")
        )
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid fault-plan JSON: {exc}") from exc


class FaultInjector:
    """The armed runtime counterpart of a :class:`FaultPlan`.

    Instrumented code calls :meth:`visit` with its site name; the
    injector raises the scheduled typed fault or returns.  ``fired``
    records every injection for assertions and post-mortems.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self._specs = self.plan.specs
        self._visits = [0] * len(self._specs)
        self._fired_counts = [0] * len(self._specs)
        self._rng = np.random.default_rng(self.plan.seed)
        #: Chronological record of injections: (site, kind, visit index).
        self.fired: List[Tuple[str, str, int]] = []

    @property
    def armed(self) -> bool:
        """Whether any spec can still fire (False = pure no-op)."""
        return bool(self._specs)

    def visit(self, site: str) -> None:
        """Announce reaching ``site``; raises the scheduled fault.

        Disarmed injectors return after a single truthiness check, so
        the instrumented hot paths carry no overhead.
        """
        if not self._specs:
            return
        firing: Optional[Tuple[FaultSpec, int]] = None
        for i, spec in enumerate(self._specs):
            if not fnmatch(site, spec.site):
                continue
            visit = self._visits[i]
            self._visits[i] = visit + 1
            if self._fired_counts[i] >= spec.times:
                continue
            if spec.at_visit is not None:
                fire = spec.at_visit <= visit < spec.at_visit + spec.times
            else:
                fire = float(self._rng.random()) < spec.rate
            if fire:
                self._fired_counts[i] += 1
                if firing is None:
                    firing = (spec, visit)
        if firing is not None:
            spec, visit = firing
            self.fired.append((site, spec.kind, visit))
            raise FAULT_KINDS[spec.kind](
                f"injected {spec.kind} at {site} (visit {visit})",
                site=site,
            )

    def fired_at(self, site_pattern: str) -> List[Tuple[str, str, int]]:
        """Injections whose site matches ``site_pattern``."""
        return [f for f in self.fired if fnmatch(f[0], site_pattern)]


#: Shared disarmed injector: the default for every ``injector`` /
#: ``fault_injector`` parameter, analogous to ``repro.obs.NULL_LOG``.
NULL_INJECTOR = FaultInjector()
