"""XML instruction-pool specification (Section 3.2).

The user describes which assembly instructions the GA may use -- and
which registers and memory addresses they may touch -- in an XML input
file.  Example:

.. code-block:: xml

    <instruction-pool isa="armv8">
      <registers int="12" fp="8" vec="8"/>
      <memory slots="32"/>
      <instruction mnemonic="add"/>
      <instruction mnemonic="mul"/>
      <instruction mnemonic="fsqrt"/>
    </instruction-pool>

Parsing yields a restricted :class:`~repro.cpu.isa.InstructionSet`
against a base ISA table (the mnemonics must exist there).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Optional, Union

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import InstructionSet, RegisterFile
from repro.cpu.x86 import X86_ISA

BASE_ISAS: Dict[str, InstructionSet] = {
    "armv8": ARM_ISA,
    "x86-64": X86_ISA,
}


class InstructionSpecError(Exception):
    """Malformed instruction-pool XML."""


def parse_instruction_pool(
    xml_text: str, base: Optional[InstructionSet] = None
) -> InstructionSet:
    """Parse pool XML into a restricted instruction set."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise InstructionSpecError(f"invalid XML: {exc}") from exc
    if root.tag != "instruction-pool":
        raise InstructionSpecError(
            f"expected <instruction-pool> root, got <{root.tag}>"
        )

    if base is None:
        isa_name = root.get("isa")
        if isa_name is None:
            raise InstructionSpecError("missing isa= attribute on root")
        try:
            base = BASE_ISAS[isa_name]
        except KeyError:
            raise InstructionSpecError(
                f"unknown base ISA {isa_name!r}; "
                f"available: {sorted(BASE_ISAS)}"
            ) from None

    mnemonics = []
    for node in root.findall("instruction"):
        m = node.get("mnemonic")
        if not m:
            raise InstructionSpecError(
                "<instruction> element missing mnemonic attribute"
            )
        mnemonics.append(m)
    if not mnemonics:
        raise InstructionSpecError("instruction pool is empty")

    registers = dict(base.registers)
    reg_node = root.find("registers")
    if reg_node is not None:
        for rf, attr in (
            (RegisterFile.INT, "int"),
            (RegisterFile.FP, "fp"),
            (RegisterFile.VEC, "vec"),
        ):
            value = reg_node.get(attr)
            if value is not None:
                count = _positive_int(value, f"registers/{attr}")
                registers[rf] = count

    memory_slots = base.memory_slots
    mem_node = root.find("memory")
    if mem_node is not None:
        slots = mem_node.get("slots")
        if slots is not None:
            memory_slots = _positive_int(slots, "memory/slots")

    try:
        specs = tuple(base.spec(m) for m in mnemonics)
    except KeyError as exc:
        raise InstructionSpecError(str(exc)) from exc
    return InstructionSet(
        name=f"{base.name}-pool",
        specs=specs,
        registers=registers,
        memory_slots=memory_slots,
    )


def load_instruction_pool(
    path: Union[str, "os.PathLike"], base: Optional[InstructionSet] = None
) -> InstructionSet:
    """Parse an instruction-pool XML file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_instruction_pool(handle.read(), base=base)


def render_instruction_pool(isa: InstructionSet, base_name: str) -> str:
    """Serialize an instruction set back to pool XML (round-trips)."""
    root = ET.Element("instruction-pool", {"isa": base_name})
    ET.SubElement(
        root,
        "registers",
        {
            "int": str(isa.registers[RegisterFile.INT]),
            "fp": str(isa.registers[RegisterFile.FP]),
            "vec": str(isa.registers[RegisterFile.VEC]),
        },
    )
    ET.SubElement(root, "memory", {"slots": str(isa.memory_slots)})
    for spec in isa.specs:
        ET.SubElement(root, "instruction", {"mnemonic": spec.mnemonic})
    return ET.tostring(root, encoding="unicode")


def _positive_int(value: str, what: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise InstructionSpecError(f"{what} must be an integer") from None
    if number < 1:
        raise InstructionSpecError(f"{what} must be >= 1")
    return number
