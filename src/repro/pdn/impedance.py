"""Frequency-domain (AC) analysis of a PDN netlist.

The central quantity is the input impedance :math:`Z(f)` seen by the die
(Fig. 1b of the paper): with all independent sources zeroed, inject a
1 A phasor at the die node and read back the node voltage.  The same
solve also yields the transfer function from load current to any branch
current, which the EM radiation model consumes (the emanating antenna is
fed by the oscillatory component of the die/package current).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.pdn.elements import Capacitor, Inductor, Resistor, VoltageSource
from repro.pdn.netlist import Circuit, MNALayout


@dataclass
class ACAnalysis:
    """Small-signal AC solution of a circuit over a frequency grid.

    Attributes
    ----------
    frequencies_hz:
        The analysis grid.
    node_voltages:
        Mapping node name -> complex response array (volts per ampere of
        injected stimulus).
    branch_currents:
        Mapping branch-element name (inductors, voltage sources) ->
        complex branch current response.
    """

    frequencies_hz: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def impedance(self, node: str) -> np.ndarray:
        """Complex impedance at ``node`` (stimulus was 1 A into it)."""
        return self.node_voltages[node]

    def impedance_magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.node_voltages[node])

    def peak_frequency_hz(
        self,
        node: str,
        band: Optional[Sequence[float]] = None,
    ) -> float:
        """Frequency of the largest impedance magnitude, optionally in ``band``.

        ``band`` is an inclusive ``(low_hz, high_hz)`` pair.  This locates
        resonance peaks: the first-order resonance is the peak in the
        50-200 MHz band.
        """
        mag = self.impedance_magnitude(node)
        freqs = self.frequencies_hz
        if band is not None:
            low, high = band
            mask = (freqs >= low) & (freqs <= high)
            if not mask.any():
                raise ValueError(f"no analysis points inside band {band}")
            mag = mag[mask]
            freqs = freqs[mask]
        return float(freqs[int(np.argmax(mag))])


def analyze_ac(
    circuit: Circuit,
    inject_node: str,
    frequencies_hz: Sequence[float],
) -> ACAnalysis:
    """Solve the circuit at each frequency with a 1 A injection.

    Independent voltage sources are shorted (zeroed) as usual for
    small-signal analysis; the current injection enters ``inject_node``
    and returns through ground.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    if freqs.ndim != 1 or freqs.size == 0:
        raise ValueError("frequencies_hz must be a non-empty 1-D sequence")
    layout = circuit.layout()
    if inject_node != "0" and inject_node not in layout.node_index:
        raise KeyError(f"unknown node {inject_node!r}")

    n = layout.size
    solutions = np.empty((freqs.size, n), dtype=complex)
    rhs = circuit.ac_rhs(layout, {inject_node: 1.0 + 0.0j})
    for i, f in enumerate(freqs):
        a = circuit.ac_matrix(2.0 * np.pi * f, layout)
        solutions[i] = np.linalg.solve(a, rhs)

    node_voltages = {
        name: solutions[:, idx] for name, idx in layout.node_index.items()
    }
    branch_currents = {
        name: solutions[:, layout.num_nodes + idx]
        for name, idx in layout.branch_index.items()
    }
    return ACAnalysis(
        frequencies_hz=freqs,
        node_voltages=node_voltages,
        branch_currents=branch_currents,
    )


def input_impedance(
    circuit: Circuit,
    node: str,
    frequencies_hz: Sequence[float],
) -> np.ndarray:
    """Convenience wrapper: complex input impedance Z(f) at ``node``."""
    return analyze_ac(circuit, node, frequencies_hz).impedance(node)


def dc_operating_point(circuit: Circuit) -> Dict[str, float]:
    """DC node voltages with all sources at their nominal values.

    Inductors are shorts and capacitors are opens at DC, which the MNA
    stamps handle naturally at ``omega = 0``.  Used to initialize
    transient analyses at the quiescent point.
    """
    layout = circuit.layout()
    a = circuit.ac_matrix(0.0, layout)
    injections: Dict[str, complex] = {}
    for src in circuit.current_sources():
        i0 = src.value_at(0.0)
        injections[src.node_a] = injections.get(src.node_a, 0.0) - i0
        injections[src.node_b] = injections.get(src.node_b, 0.0) + i0
    b = circuit.ac_rhs(layout, injections, source_voltages=True)
    # Capacitors contribute nothing at omega=0; if a node is connected
    # only through capacitors the matrix is singular.  Regularize with a
    # tiny leak conductance to ground on every node.
    a = a + np.diag(
        np.concatenate(
            [np.full(layout.num_nodes, 1e-12), np.zeros(layout.num_branches)]
        )
    )
    x = np.linalg.solve(a, b)
    return {
        name: float(np.real(x[idx])) for name, idx in layout.node_index.items()
    }


def total_series_resistance(circuit: Circuit, from_node: str) -> float:
    """DC (IR) resistance seen from ``from_node`` back to the supply."""
    layout = circuit.layout()
    a = circuit.ac_matrix(0.0, layout)
    a = a + np.diag(
        np.concatenate(
            [np.full(layout.num_nodes, 1e-12), np.zeros(layout.num_branches)]
        )
    )
    b = circuit.ac_rhs(layout, {from_node: 1.0 + 0.0j})
    x = np.linalg.solve(a, b)
    return float(np.real(x[layout.node(from_node)]))


def describe_elements(circuit: Circuit) -> str:
    """Human-readable one-line-per-element netlist dump."""
    lines = []
    for e in circuit.elements:
        if isinstance(e, Resistor):
            value = f"{e.resistance:g} ohm"
        elif isinstance(e, Inductor):
            value = f"{e.inductance:g} H"
        elif isinstance(e, Capacitor):
            value = f"{e.capacitance:g} F"
        elif isinstance(e, VoltageSource):
            value = f"{e.voltage:g} V"
        else:
            value = "source"
        lines.append(f"{e.name:<16} {e.node_a:>8} -> {e.node_b:<8} {value}")
    return "\n".join(lines)
