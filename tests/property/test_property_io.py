"""Property-based round-trip tests for serialization layers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cpu.arm import ARM_ISA
from repro.cpu.x86 import X86_ISA
from repro.cpu.program import random_program
from repro.ga.instruction_spec import (
    parse_instruction_pool,
    render_instruction_pool,
)
from repro.io.serialization import program_from_dict, program_to_dict

seeds = st.integers(min_value=0, max_value=100_000)
lengths = st.integers(min_value=1, max_value=80)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, length=lengths, arm=st.booleans())
def test_program_json_round_trip(seed, length, arm):
    """Every generatable program survives the JSON round trip exactly."""
    isa = ARM_ISA if arm else X86_ISA
    program = random_program(isa, length, np.random.default_rng(seed))
    loaded = program_from_dict(program_to_dict(program))
    assert loaded.genome() == program.genome()
    assert loaded.assembly() == program.assembly()
    assert loaded.isa.registers == program.isa.registers
    assert loaded.isa.memory_slots == program.isa.memory_slots


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    n_instr=st.integers(min_value=1, max_value=len(ARM_ISA.specs)),
    int_regs=st.integers(min_value=1, max_value=31),
    slots=st.integers(min_value=1, max_value=512),
)
def test_instruction_pool_xml_round_trip(seed, n_instr, int_regs, slots):
    """Arbitrary instruction pools survive the XML round trip."""
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        [s.mnemonic for s in ARM_ISA.specs], size=n_instr, replace=False
    )
    instr_lines = "".join(
        f'<instruction mnemonic="{m}"/>' for m in chosen
    )
    xml = (
        f'<instruction-pool isa="armv8">'
        f'<registers int="{int_regs}"/>'
        f'<memory slots="{slots}"/>'
        f"{instr_lines}</instruction-pool>"
    )
    isa = parse_instruction_pool(xml)
    isa2 = parse_instruction_pool(render_instruction_pool(isa, "armv8"))
    assert [s.mnemonic for s in isa2.specs] == list(chosen)
    assert isa2.registers == isa.registers
    assert isa2.memory_slots == slots


@settings(max_examples=30, deadline=None)
@given(seed=seeds, length=st.integers(min_value=1, max_value=50))
def test_serialized_program_is_json_stable(seed, length):
    """Serializing twice yields identical dictionaries (no hidden state)."""
    program = random_program(
        ARM_ISA, length, np.random.default_rng(seed)
    )
    assert program_to_dict(program) == program_to_dict(program)
