"""Unit tests for the VirusGenerator (small GA configs for speed)."""

import numpy as np
import pytest

from repro.core.virusgen import VirusGenerator
from repro.ga.engine import GAConfig
from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.probes import DifferentialProbe

SMALL = GAConfig(
    population_size=16, generations=14, loop_length=40, seed=21
)


class TestEMVirusGeneration:
    @pytest.fixture(scope="class")
    def summary(self, juno_board):
        from repro.core.characterizer import EMCharacterizer
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

        juno_board.a72.reset()
        characterizer = EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(77)),
            samples=4,
        )
        gen = VirusGenerator(
            juno_board.a72, characterizer, config=SMALL
        )
        return gen.generate_em_virus(samples=4)

    def test_summary_fields(self, summary):
        assert summary.cluster_name == "cortex-a72"
        assert summary.metric == "em-amplitude"
        assert summary.generations == 14
        assert len(summary.virus) == 40

    def test_amplitude_improves_over_generations(self, summary):
        scores = summary.ga_result.score_series()
        assert scores[-1] > scores[0]

    def test_dominant_frequency_near_resonance(self, summary):
        assert summary.dominant_frequency_hz == pytest.approx(
            67e6, abs=6e6
        )

    def test_droop_exceeds_random_start(self, summary):
        droops = summary.ga_result.droop_series()
        assert summary.max_droop_v >= droops[0]

    def test_convergence_table_rows(self, summary):
        table = summary.convergence_table()
        assert len(table) == 14
        gen0 = table[0]
        assert gen0[0] == 0 and gen0[1] > 0


class TestVoltageFeedbackBaselines:
    def test_droop_virus_requires_ocdso(self, athlon):
        gen = VirusGenerator(athlon, config=SMALL)
        with pytest.raises(ValueError, match="OC-DSO"):
            gen.generate_droop_virus(Oscilloscope())

    def test_kelvin_virus_requires_pads(self, a72):
        gen = VirusGenerator(a72, config=SMALL)
        with pytest.raises(ValueError, match="Kelvin"):
            gen.generate_oscilloscope_virus(DifferentialProbe())

    @pytest.mark.slow
    def test_ocdso_virus_on_a72(self, juno_board):
        juno_board.a72.reset()
        gen = VirusGenerator(juno_board.a72, config=SMALL)
        summary = gen.generate_droop_virus(juno_board.oc_dso)
        assert summary.metric == "oc-dso-droop"
        assert summary.max_droop_v > 0.02

    @pytest.mark.slow
    def test_kelvin_virus_on_amd(self, amd_desktop):
        amd_desktop.cpu.reset()
        gen = VirusGenerator(
            amd_desktop.cpu,
            config=GAConfig(
                population_size=10, generations=6, loop_length=24,
                seed=31,
            ),
        )
        summary = gen.generate_oscilloscope_virus(amd_desktop.probe)
        assert summary.metric == "kelvin-peak-to-peak"
        assert summary.peak_to_peak_v > 0.0


class TestActiveCoreRestriction:
    def test_two_core_virus_on_quad(self, a53, characterizer):
        gen = VirusGenerator(
            a53,
            characterizer,
            config=GAConfig(
                population_size=8, generations=4, loop_length=20, seed=5
            ),
            active_cores=2,
        )
        summary = gen.generate_em_virus(samples=3)
        assert summary.max_droop_v > 0.0


class TestBandNarrowing:
    def test_narrowed_band_centers_on_resonance(self, juno_board):
        from repro.core.characterizer import EMCharacterizer
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

        juno_board.a72.reset()
        gen = VirusGenerator(
            juno_board.a72,
            EMCharacterizer(
                analyzer=SpectrumAnalyzer(
                    rng=np.random.default_rng(44)
                ),
                samples=3,
            ),
            config=SMALL,
        )
        clocks = [1.2e9 - k * 40e6 for k in range(26)]
        low, high = gen.narrowed_band_from_sweep(
            half_width_hz=10e6, clocks_hz=clocks, samples_per_point=3
        )
        center = (low + high) / 2
        assert abs(center - 67e6) < 8e6
        assert high - low == pytest.approx(20e6, abs=1e6)

    def test_band_clipped_to_first_order_limits(self, juno_board):
        from repro.core.characterizer import EMCharacterizer
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

        juno_board.a72.reset()
        gen = VirusGenerator(
            juno_board.a72,
            EMCharacterizer(
                analyzer=SpectrumAnalyzer(
                    rng=np.random.default_rng(45)
                ),
                samples=3,
            ),
            config=SMALL,
        )
        clocks = [1.2e9 - k * 40e6 for k in range(26)]
        low, high = gen.narrowed_band_from_sweep(
            half_width_hz=50e6, clocks_hz=clocks, samples_per_point=3
        )
        assert low >= 50e6
        assert high <= 200e6
