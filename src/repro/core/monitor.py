"""Continuous EM-based voltage-emergency monitoring.

Builds on two of the paper's observations:

- a single antenna hears every voltage domain at once (Section 6.1),
  and
- resonant voltage emergencies show up as a large EM spike in the
  first-order band,

which together give a non-intrusive production monitor: watch the
banded EM amplitude over time and raise an alarm when a workload starts
ringing the PDN -- whether that's an unlucky application phase or a
malicious dI/dt virus (the paper's future-work security angle).

Detection uses a robust baseline: the alarm threshold sits a fixed
number of dB above the running median of recent quiet samples, so slow
environmental drift doesn't trip it but a resonance spike does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.platforms.base import Cluster, ClusterRun
from repro.workloads.base import Workload


@dataclass
class MonitorSample:
    """One monitoring interval's observation."""

    index: int
    label: str
    amplitude_w: float
    amplitude_dbm: float
    alarm: bool


@dataclass
class MonitorLog:
    """Chronological record of a monitoring session."""

    samples: List[MonitorSample] = field(default_factory=list)

    def alarms(self) -> List[MonitorSample]:
        return [s for s in self.samples if s.alarm]

    def alarm_labels(self) -> List[str]:
        return [s.label for s in self.alarms()]


class EmergencyMonitor:
    """Threshold-over-baseline detector on the banded EM amplitude.

    Parameters
    ----------
    characterizer:
        The receive chain to observe through.
    margin_db:
        Alarm threshold above the quiet baseline.
    baseline_window:
        Number of most recent non-alarming samples forming the
        baseline median.
    samples_per_observation:
        Spectrum-analyzer sweeps averaged per observation.
    """

    def __init__(
        self,
        characterizer: Optional[EMCharacterizer] = None,
        margin_db: float = 12.0,
        baseline_window: int = 8,
        samples_per_observation: int = 5,
    ):
        if margin_db <= 0.0:
            raise ValueError("margin_db must be positive")
        if baseline_window < 2:
            raise ValueError("baseline_window must be >= 2")
        self.characterizer = characterizer or EMCharacterizer()
        self.margin_db = margin_db
        self.baseline_window = baseline_window
        self.samples_per_observation = samples_per_observation
        self._baseline: List[float] = []

    # ------------------------------------------------------------------
    def _amplitude_of(self, run: ClusterRun) -> float:
        emission = self.characterizer.emission_of(run)
        return self.characterizer.analyzer.max_amplitude(
            emission,
            band=self.characterizer.band,
            samples=self.samples_per_observation,
        )

    def calibrate_baseline(
        self, cluster: Cluster, quiet_workloads: Sequence[Workload]
    ) -> float:
        """Prime the baseline with known-quiet workloads; returns it (dBm)."""
        for workload in quiet_workloads:
            run = workload.run(cluster)
            emission = self.characterizer.radiator.emission(run.response)
            amplitude = self.characterizer.analyzer.max_amplitude(
                emission,
                band=self.characterizer.band,
                samples=self.samples_per_observation,
            )
            self._baseline.append(amplitude)
        self._baseline = self._baseline[-self.baseline_window:]
        return self.baseline_dbm()

    def baseline_dbm(self) -> float:
        if not self._baseline:
            raise RuntimeError("baseline not calibrated")
        return 10.0 * np.log10(
            float(np.median(self._baseline)) / 1.0e-3
        )

    # ------------------------------------------------------------------
    def observe(
        self,
        cluster: Cluster,
        workload: Workload,
        index: int = 0,
    ) -> MonitorSample:
        """One monitoring interval: measure, compare, update baseline."""
        run = workload.run(cluster)
        emission = self.characterizer.radiator.emission(run.response)
        amplitude = self.characterizer.analyzer.max_amplitude(
            emission,
            band=self.characterizer.band,
            samples=self.samples_per_observation,
        )
        dbm = 10.0 * np.log10(amplitude / 1.0e-3)
        alarm = dbm > self.baseline_dbm() + self.margin_db
        if not alarm:
            self._baseline.append(amplitude)
            self._baseline = self._baseline[-self.baseline_window:]
        return MonitorSample(
            index=index,
            label=workload.name,
            amplitude_w=amplitude,
            amplitude_dbm=float(dbm),
            alarm=alarm,
        )

    def watch(
        self,
        cluster: Cluster,
        schedule: Sequence[Workload],
    ) -> MonitorLog:
        """Monitor a sequence of workload intervals."""
        log = MonitorLog()
        for i, workload in enumerate(schedule):
            log.samples.append(self.observe(cluster, workload, index=i))
        return log
