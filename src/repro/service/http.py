"""Stdlib asyncio HTTP front end for :class:`MeasurementService`.

A deliberately small HTTP/1.1 server built directly on
:func:`asyncio.start_server` -- no web framework, no new dependency.
One connection carries one request (``Connection: close``); bodies are
JSON both ways.  Routes:

==========================================  =================================
``GET  /healthz``                           liveness probe
``GET  /v1/stats``                          counters + queue depth
``POST /v1/jobs``                           submit ``{kind, params, tenant,
                                            timeout_s}`` -> 202 + job view
``GET  /v1/jobs/<id>``                      status/result view (falls back
                                            to the persisted manifest)
``GET  /v1/jobs/<id>/wait?timeout_s=T``     long-poll until terminal
``GET  /v1/jobs/<id>/events``               per-job progress notes
``POST /v1/jobs/<id>/cancel``               cancel
==========================================  =================================

Service exceptions carry their own ``http_status``
(:mod:`repro.service.jobs`), so the error path is a single translation:
``{"error": str(exc), "type": type(exc).__name__}`` with that status.
Rate-limit rejections add ``retry_after_s`` and a ``Retry-After``
header, which is all a well-behaved client needs to back off.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.core import MeasurementService
from repro.service.jobs import (
    BadRequest,
    RateLimited,
    ServiceError,
)

MAX_BODY_BYTES = 1_000_000

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """Bind a :class:`MeasurementService` to a TCP port."""

    def __init__(
        self,
        service: MeasurementService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ServiceServer":
        """Start listening; with ``port=0`` the OS picks a free port
        and :attr:`port` is updated to the bound one."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.service.event_log.emit(
            "service_listening", host=self.host, port=self.port
        )
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ServiceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
            except _HttpParseError as exc:
                await _respond(
                    writer, exc.status, {"error": str(exc)}
                )
                return
            status, payload, headers = await self._route(
                method, path, body
            )
            await _respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _route(
        self, method: str, target: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        try:
            return await self._dispatch(method, path, query, body)
        except RateLimited as exc:
            return (
                exc.http_status,
                {
                    "error": str(exc),
                    "type": type(exc).__name__,
                    "retry_after_s": exc.retry_after_s,
                },
                {"Retry-After": f"{exc.retry_after_s:.3f}"},
            )
        except ServiceError as exc:
            return (
                exc.http_status,
                {"error": str(exc), "type": type(exc).__name__},
                {},
            )

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: Dict[str, list],
        body: Optional[Dict[str, Any]],
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        service = self.service
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "closed": service._closed}, {}
        if path == "/v1/stats" and method == "GET":
            return 200, service.stats(), {}
        if path == "/v1/jobs" and method == "POST":
            if body is None:
                raise BadRequest("POST /v1/jobs needs a JSON body")
            job = service.submit(
                kind=body.get("kind", ""),
                params=body.get("params", {}),
                tenant=body.get("tenant", "default"),
                timeout_s=body.get("timeout_s"),
            )
            return 202, job.view(), {}
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if "/" not in rest:
                if method != "GET":
                    return _method_not_allowed(method, path)
                return 200, service.job_view(rest), {}
            job_id, action = rest.split("/", 1)
            if action == "wait" and method == "GET":
                return await self._wait(job_id, query)
            if action == "events" and method == "GET":
                job = service.get(job_id)
                return (
                    200,
                    {"job_id": job.id, "events": job.progress},
                    {},
                )
            if action == "cancel" and method == "POST":
                return 200, service.cancel(job_id).view(), {}
        return _method_not_allowed(method, path)

    async def _wait(
        self, job_id: str, query: Dict[str, list]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        job = self.service.get(job_id)
        timeout_s: Optional[float] = None
        if "timeout_s" in query:
            try:
                timeout_s = float(query["timeout_s"][0])
            except ValueError as exc:
                raise BadRequest(
                    f"timeout_s must be a number: {exc}"
                ) from exc
        if job.future is not None and not job.finished:
            try:
                await asyncio.wait_for(
                    asyncio.shield(job.future), timeout_s
                )
            except asyncio.TimeoutError:
                # Long-poll window elapsed with the job still live:
                # report current state, client polls again.
                return 202, job.view(), {}
            except ServiceError:
                pass  # terminal error is part of the view below
        return 200, job.view(), {}


def _method_not_allowed(
    method: str, path: str
) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    return (
        405 if path.startswith("/v1/") or path == "/healthz" else 404,
        {"error": f"no route for {method} {path}"},
        {},
    )


class _HttpParseError(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Optional[Dict[str, Any]]]:
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        raise _HttpParseError(400, "empty request")
    try:
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise _HttpParseError(
            400, f"malformed request line: {request_line!r}"
        ) from None
    content_length = 0
    while True:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            break
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _HttpParseError(
                    400, f"bad Content-Length: {value.strip()!r}"
                ) from None
    if content_length > MAX_BODY_BYTES:
        raise _HttpParseError(
            413, f"body of {content_length} bytes exceeds limit"
        )
    body: Optional[Dict[str, Any]] = None
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HttpParseError(
                400, f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise _HttpParseError(
                400, "request body must be a JSON object"
            )
    return method.upper(), target, body


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(
        ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
    )
    await writer.drain()
