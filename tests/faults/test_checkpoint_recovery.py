"""Chaos tests for checkpoint corruption detection and recovery.

The checksummed two-line format plus rotated siblings give the run
harness a recovery pool: a corrupted or truncated primary must be
detected (never silently loaded), the newest valid rotation must take
over (with a ``checkpoint_recovered`` event), and resuming from the
recovered state must continue the campaign bit-identically from that
earlier generation.
"""

from dataclasses import replace

import pytest

from repro.faults import (
    CorruptArtifact,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.ga.engine import GAEngine
from repro.io.serialization import (
    load_checkpoint,
    rotated_paths,
    save_checkpoint,
)
from repro.obs.events import EventLog, MemorySink

from tests.ga.test_checkpoint import (
    CONFIG,
    GenomeHashFitness,
    _assert_identical,
    isa,  # noqa: F401  (fixture re-export)
)


def _campaign_with_checkpoints(isa, path):
    """Run a 6-gen campaign checkpointing every generation; returns the
    full-run result (c.json holds gen 5, c.json.1 gen 4, ...)."""
    return GAEngine(GenomeHashFitness(), config=CONFIG).run(
        isa, checkpoint_path=path, checkpoint_every=1
    )


def _flip_byte(path, offset=100):
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestDetection:
    def test_flipped_byte_is_detected(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        _campaign_with_checkpoints(isa, ckpt)
        for sibling in rotated_paths(ckpt):
            _flip_byte(sibling)
        with pytest.raises(CorruptArtifact, match="checksum"):
            load_checkpoint(ckpt)

    def test_truncation_is_detected(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        _campaign_with_checkpoints(isa, ckpt)
        for sibling in rotated_paths(ckpt):
            raw = sibling.read_bytes()
            sibling.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptArtifact):
            load_checkpoint(ckpt)

    def test_missing_checkpoint_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.json")


class TestRecovery:
    def test_corrupt_primary_recovers_from_rotation(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        _campaign_with_checkpoints(isa, ckpt)
        healthy = load_checkpoint(ckpt)
        previous = load_checkpoint(tmp_path / "c.json.1")
        _flip_byte(ckpt)
        sink = MemorySink()
        recovered = load_checkpoint(ckpt, event_log=EventLog([sink]))
        assert recovered.generation == previous.generation
        assert recovered.generation == healthy.generation - 1
        (event,) = sink.events("checkpoint_recovered")
        assert event["recovered_from"].endswith("c.json.1")
        assert event["rejected"][0]["path"].endswith("c.json")
        assert event["generation"] == recovered.generation

    def test_double_corruption_falls_back_twice(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        _campaign_with_checkpoints(isa, ckpt)
        oldest = load_checkpoint(tmp_path / "c.json.2")
        _flip_byte(ckpt)
        _flip_byte(tmp_path / "c.json.1")
        sink = MemorySink()
        recovered = load_checkpoint(ckpt, event_log=EventLog([sink]))
        assert recovered.generation == oldest.generation
        (event,) = sink.events("checkpoint_recovered")
        assert event["recovered_from"].endswith("c.json.2")
        assert len(event["rejected"]) == 2

    def test_resume_from_recovered_checkpoint_is_bit_identical(
        self, isa, tmp_path
    ):
        ckpt = tmp_path / "c.json"
        full = GAEngine(GenomeHashFitness(), config=CONFIG).run(isa)
        GAEngine(
            GenomeHashFitness(), config=replace(CONFIG, generations=4)
        ).run(isa, checkpoint_path=ckpt, checkpoint_every=1)
        _flip_byte(ckpt)  # the newest save is lost...
        recovered = load_checkpoint(ckpt)  # ...recover the previous one
        resumed = GAEngine(GenomeHashFitness(), config=CONFIG).run(
            isa, resume=recovered
        )
        _assert_identical(resumed, full)


class TestInjectedSaveCorruption:
    def test_silent_torn_write_recovered_on_load(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        # Corrupt the 3rd save (generations 1 and 2 land intact, then
        # generation 3's write is torn mid-file without erroring).
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="checkpoint.save",
                        kind="corrupt_artifact",
                        at_visit=2,
                    ),
                )
            )
        )
        GAEngine(
            GenomeHashFitness(),
            config=replace(CONFIG, generations=4),
            fault_injector=injector,
        ).run(isa, checkpoint_path=ckpt, checkpoint_every=1)
        assert injector.fired_at("checkpoint.save")
        sink = MemorySink()
        recovered = load_checkpoint(ckpt, event_log=EventLog([sink]))
        # The torn gen-3 file is rejected, gen 2 takes over.
        assert recovered.generation == 2
        assert sink.events("checkpoint_recovered")

    def test_transient_save_fault_is_retried(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="checkpoint.save",
                        kind="transient",
                        at_visit=0,
                    ),
                )
            )
        )
        sink = MemorySink()
        GAEngine(
            GenomeHashFitness(),
            config=replace(CONFIG, generations=3),
            retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.0),
            fault_injector=injector,
        ).run(
            isa,
            checkpoint_path=ckpt,
            checkpoint_every=1,
            event_log=EventLog([sink]),
        )
        retries = sink.events("retry_attempt")
        assert any(r["scope"] == "checkpoint-save" for r in retries)
        # The retried write is intact and loads without fallback.
        recovery_sink = MemorySink()
        load_checkpoint(ckpt, event_log=EventLog([recovery_sink]))
        assert not recovery_sink.events("checkpoint_recovered")


class TestLegacyFormat:
    def test_legacy_unchecksummed_checkpoint_warns_and_loads(
        self, isa, tmp_path
    ):
        import json

        from repro.io.serialization import checkpoint_to_dict

        ckpt = tmp_path / "c.json"
        _campaign_with_checkpoints(isa, ckpt)
        checkpoint = load_checkpoint(ckpt)
        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps(checkpoint_to_dict(checkpoint)), encoding="utf-8"
        )
        with pytest.warns(UserWarning, match="no checksum footer"):
            loaded = load_checkpoint(legacy)
        assert loaded.generation == checkpoint.generation

    def test_resave_of_legacy_gains_footer(self, isa, tmp_path):
        import json

        from repro.io.serialization import checkpoint_to_dict

        ckpt = tmp_path / "c.json"
        _campaign_with_checkpoints(isa, ckpt)
        checkpoint = load_checkpoint(ckpt)
        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps(checkpoint_to_dict(checkpoint)), encoding="utf-8"
        )
        with pytest.warns(UserWarning):
            loaded = load_checkpoint(legacy)
        save_checkpoint(loaded, legacy)
        reloaded = load_checkpoint(legacy)  # no warning now
        assert reloaded.generation == checkpoint.generation
        assert len(legacy.read_bytes().splitlines()) == 2
