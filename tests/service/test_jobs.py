"""Job specs: wire-format parsing, validation, lifecycle views."""

import pytest

from repro.service.jobs import (
    DONE,
    QUEUED,
    BadRequest,
    Job,
    MeasureSpec,
    QueueFull,
    RateLimited,
    SweepSpec,
    VirusSpec,
    spec_from_params,
)


class TestSpecParsing:
    def test_measure_roundtrip(self):
        spec = spec_from_params(
            "measure",
            {
                "platform": "a53",
                "program_seed": 7,
                "band": [60e6, 90e6],
                "samples": 3,
            },
        )
        assert isinstance(spec, MeasureSpec)
        assert spec.band == (60e6, 90e6)
        again = MeasureSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_sweep_roundtrip(self):
        spec = spec_from_params(
            "sweep", {"platform": "a53", "clocks_hz": [1.15e9, 1.1e9]}
        )
        assert isinstance(spec, SweepSpec)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_virus_roundtrip(self):
        spec = spec_from_params(
            "virus", {"platform": "a53", "generations": 2}
        )
        assert isinstance(spec, VirusSpec)
        assert VirusSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(BadRequest, match="unknown job kind"):
            spec_from_params("calibrate", {"platform": "a53"})

    def test_missing_platform_rejected(self):
        for kind in ("measure", "sweep", "virus"):
            with pytest.raises(BadRequest, match="platform"):
                spec_from_params(kind, {})

    def test_non_dict_params_rejected(self):
        with pytest.raises(BadRequest, match="JSON object"):
            spec_from_params("measure", [1, 2])

    @pytest.mark.parametrize(
        "band", [[2e8, 1e8], [float("nan"), 1e8], [1e8], "bad"]
    )
    def test_bad_band_rejected(self, band):
        with pytest.raises(BadRequest):
            spec_from_params(
                "measure", {"platform": "a53", "band": band}
            )


class TestErrors:
    def test_http_status_mapping(self):
        assert BadRequest("x").http_status == 400
        assert QueueFull(9).http_status == 429
        limited = RateLimited("alice", 1.5)
        assert limited.http_status == 429
        assert limited.retry_after_s == 1.5
        assert "alice" in str(limited)


class TestJobRecord:
    def _job(self):
        return Job(
            id="job-1",
            tenant="t",
            spec=MeasureSpec(platform="a53"),
            seq=1,
        )

    def test_view_shape(self):
        job = self._job()
        view = job.view()
        assert view["job_id"] == "job-1"
        assert view["kind"] == "measure"
        assert view["status"] == QUEUED
        assert "result" not in view
        job.status = DONE
        job.result = {"amplitude_w": 1.0}
        assert job.view()["result"] == {"amplitude_w": 1.0}

    def test_progress_notes_accumulate(self):
        job = self._job()
        job.note("submitted", tenant="t")
        job.note("batched", batch_id="batch-1")
        assert [n["event"] for n in job.progress] == [
            "submitted",
            "batched",
        ]
