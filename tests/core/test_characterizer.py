"""Unit tests for the EMCharacterizer."""

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer, _top_spikes
from repro.cpu.program import program_from_mnemonics
from repro.workloads.loops import high_low_program


class TestMeasure:
    def test_measurement_fields(self, a72, characterizer):
        program = high_low_program(a72.spec.isa)
        m = characterizer.measure(a72, program, samples=3)
        assert m.amplitude_w > 0.0
        assert 50e6 <= m.peak_frequency_hz <= 200e6
        assert m.loop_frequency_hz == pytest.approx(150e6)
        assert m.trace.power_dbm.size > 100

    def test_resonant_loop_scores_higher(self, a72, characterizer):
        """Same loop, clock tuned so loop frequency hits 67 MHz."""
        program = high_low_program(a72.spec.isa)
        off = characterizer.measure(a72, program, samples=3)
        a72.set_clock(540e6)  # 8-cycle loop -> 67.5 MHz
        on = characterizer.measure(a72, program, samples=3)
        assert on.amplitude_w > off.amplitude_w

    def test_peak_frequency_tracks_loop(self, a72, characterizer):
        program = high_low_program(a72.spec.isa)
        a72.set_clock(800e6)  # loop at 100 MHz
        m = characterizer.measure(a72, program, samples=3)
        assert m.peak_frequency_hz == pytest.approx(100e6, abs=2e6)


class TestMultiDomain:
    def test_both_domains_visible(self, juno_board, characterizer):
        juno_board.a72.reset()
        juno_board.a53.reset()
        run72 = juno_board.a72.run(
            high_low_program(juno_board.a72.spec.isa)
        )
        run53 = juno_board.a53.run(
            high_low_program(juno_board.a53.spec.isa)
        )
        md = characterizer.monitor_domains(
            {"cortex-a72": run72, "cortex-a53": run53}
        )
        assert set(md.domain_peaks) == {"cortex-a72", "cortex-a53"}
        assert set(md.visible_domains()) == {"cortex-a72", "cortex-a53"}

    def test_signatures_at_distinct_frequencies(
        self, juno_board, characterizer
    ):
        juno_board.a72.reset()
        juno_board.a53.reset()
        run72 = juno_board.a72.run(
            high_low_program(juno_board.a72.spec.isa)
        )
        run53 = juno_board.a53.run(
            high_low_program(juno_board.a53.spec.isa)
        )
        md = characterizer.monitor_domains(
            {"cortex-a72": run72, "cortex-a53": run53}
        )
        f72 = md.domain_peaks["cortex-a72"][0]
        f53 = md.domain_peaks["cortex-a53"][0]
        assert abs(f72 - f53) > 5e6


class TestSpectrumVsScopeFFT:
    def test_instruments_agree_on_spikes(
        self, juno_board, characterizer
    ):
        """Fig. 9: SA spikes and OC-DSO FFT spikes coincide."""
        from repro.analysis.spectra import spikes_agree

        juno_board.a72.reset()
        a72 = juno_board.a72
        a72.set_clock(540e6)  # resonant hi/lo loop
        run = a72.run(high_low_program(a72.spec.isa))
        capture = juno_board.oc_dso.capture(run.response, 4e-6)
        spikes = characterizer.spectrum_vs_scope_fft(run, capture)
        assert spikes_agree(
            spikes["spectrum_analyzer"],
            spikes["oc_dso_fft"],
            tolerance_hz=2e6,
            require=1,
        )
        a72.reset()


class TestTopSpikes:
    def test_finds_local_maxima(self):
        f = np.arange(10.0)
        v = np.array([0, 5, 0, 0, 9, 0, 0, 3, 0, 0], dtype=float)
        spikes = _top_spikes(f, v, 2)
        values = {val for _, val in spikes}
        assert values == {9.0, 5.0}

    def test_short_input(self):
        f = np.array([1.0, 2.0])
        v = np.array([3.0, 4.0])
        assert len(_top_spikes(f, v, 5)) == 2
