"""Measurement instrument models.

Simulated stand-ins for the paper's bench equipment:

- :mod:`repro.instruments.spectrum_analyzer` -- Agilent E4402B/N9332C
  style swept analyzer (RBW bins, dBm, noise floor, 30-sample RMS
  amplitude metric).
- :mod:`repro.instruments.oscilloscope` -- the Juno OC-DSO (on-chip
  power-supply monitor, 1.6 GHz sampling) and bench scopes on Kelvin
  pads: sampling, quantization, record capture, FFT.
- :mod:`repro.instruments.scl` -- the synthetic current load block that
  injects square-wave current into the A72 PDN.
- :mod:`repro.instruments.probes` -- differential probe on on-package
  Kelvin measurement points.
- :mod:`repro.instruments.visa` -- a SCPI-ish instrument facade so the
  control flow mirrors a real pyvisa workstation setup.
"""

from repro.instruments.spectrum_analyzer import SpectrumAnalyzer, SpectrumTrace
from repro.instruments.oscilloscope import Oscilloscope, ScopeCapture
from repro.instruments.scl import SyntheticCurrentLoad, SCLSweepResult
from repro.instruments.probes import DifferentialProbe
from repro.instruments.visa import ScpiInstrument, SimulatedResourceManager

__all__ = [
    "SpectrumAnalyzer",
    "SpectrumTrace",
    "Oscilloscope",
    "ScopeCapture",
    "SyntheticCurrentLoad",
    "SCLSweepResult",
    "DifferentialProbe",
    "ScpiInstrument",
    "SimulatedResourceManager",
]
