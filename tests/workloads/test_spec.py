"""Unit tests for the SPEC-like and desktop benchmark suites."""

import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import InstructionClass
from repro.cpu.x86 import X86_ISA
from repro.workloads.desktop import DESKTOP_PROFILES, desktop_suite
from repro.workloads.spec import (
    SPEC_PROFILES,
    build_profile_program,
    spec_suite,
    spec_workload,
)


class TestProfilePrograms:
    def test_all_profiles_build_on_both_isas(self):
        for isa in (ARM_ISA, X86_ISA):
            for profile in SPEC_PROFILES:
                program = build_profile_program(isa, profile)
                assert len(program) == profile.loop_length

    def test_program_deterministic(self):
        p1 = build_profile_program(ARM_ISA, SPEC_PROFILES[0])
        p2 = build_profile_program(ARM_ISA, SPEC_PROFILES[0])
        assert p1.genome() == p2.genome()

    def test_profiles_differ(self):
        a = build_profile_program(ARM_ISA, SPEC_PROFILES[0])
        b = build_profile_program(ARM_ISA, SPEC_PROFILES[1])
        assert a.genome() != b.genome()

    def test_weights_shape_mix(self):
        """An FP-heavy profile yields an FP-heavy loop."""
        namd = next(p for p in SPEC_PROFILES if p.name == "namd")
        program = build_profile_program(ARM_ISA, namd)
        mix = program.instruction_mix()
        assert mix[InstructionClass.FLOAT] > 0.3

    def test_divides_are_rare(self):
        """Within-class weighting keeps div/sqrt at percent level."""
        namd = next(p for p in SPEC_PROFILES if p.name == "namd")
        program = build_profile_program(ARM_ISA, namd)
        stalls = sum(
            1 for i in program.body if i.spec.recip_throughput > 4
        )
        assert stalls / len(program) < 0.08

    def test_grouped_profile_sorts_phases(self):
        lbm = next(p for p in SPEC_PROFILES if p.name == "lbm")
        assert lbm.grouped
        program = build_profile_program(ARM_ISA, lbm)
        classes = [i.spec.iclass for i in program.body]
        mem_positions = [
            k for k, c in enumerate(classes) if c is InstructionClass.MEM
        ]
        simd_positions = [
            k for k, c in enumerate(classes) if c is InstructionClass.SIMD
        ]
        if mem_positions and simd_positions:
            assert max(mem_positions) < min(simd_positions)


class TestSuites:
    def test_full_suite_names_unique(self):
        suite = spec_suite(ARM_ISA)
        names = [wl.name for wl in suite]
        assert len(names) == len(set(names)) == len(SPEC_PROFILES)

    def test_selected_suite(self):
        suite = spec_suite(ARM_ISA, ["lbm", "mcf"])
        assert [wl.name for wl in suite] == ["lbm", "mcf"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            spec_workload(ARM_ISA, "doom3")

    def test_desktop_suite_on_x86(self):
        suite = desktop_suite(X86_ISA)
        assert {wl.name for wl in suite} == {
            p.name for p in DESKTOP_PROFILES
        }


class TestDroopOrdering:
    """The Fig. 10 structure: idle << typical SPEC < lbm."""

    def test_lbm_is_noisiest_spec_member(self, a72):
        droops = {}
        for name in ("lbm", "gcc", "mcf", "omnetpp", "perlbench"):
            droops[name] = spec_workload(a72.spec.isa, name).run(
                a72
            ).max_droop
        assert droops["lbm"] == max(droops.values())

    def test_idle_far_below_benchmarks(self, a72):
        from repro.workloads.stress import idle_workload

        idle = idle_workload().run(a72).max_droop
        gcc = spec_workload(a72.spec.isa, "gcc").run(a72).max_droop
        assert idle < 0.3 * gcc
