"""Figure 16: loop-frequency sweep on the Athlon II X4 645.

Paper: the fast EM sweep on the x86-64 desktop CPU reveals a first-
order resonance at 78 MHz.
"""

from repro.core.resonance import ResonanceSweep
from repro.obs import RunContext

from benchmarks.conftest import paper_characterizer, print_header

CLOCKS = [3.1e9 - k * 100e6 for k in range(0, 24)]


def test_fig16_amd_loop_sweep(benchmark, amd_desktop):
    cpu = amd_desktop.cpu
    cpu.reset()
    sweep = ResonanceSweep(paper_characterizer(61), samples_per_point=5)

    def regenerate():
        return sweep.run(RunContext(cluster=cpu), clocks_hz=CLOCKS)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 16: EM loop-frequency sweep on the AMD CPU")
    freqs, amps = result.series()
    print(f"{'loop f':>9} {'amplitude':>14}")
    for f, a in zip(freqs, amps):
        print(f"{f / 1e6:>6.1f} MHz {a:>11.3e} W")
    res = result.resonance_hz()
    print(f"  resonance: {res / 1e6:.1f} MHz (paper: 78 MHz)")
    assert abs(res - 78e6) < 6e6
