"""Differential probing of on-package Kelvin measurement points.

The AMD platform exposes on-package sense pads wired to the on-chip
rails; a differential probe connects them to a bench oscilloscope.
The probe model applies a first-order bandwidth roll-off and gain
error before the scope samples the waveform -- the chain the paper's
``OscVirus`` GA feedback runs through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.instruments.oscilloscope import Oscilloscope, ScopeCapture
from repro.pdn.steady_state import PeriodicResponse


@dataclass
class DifferentialProbe:
    """Differential probe with finite bandwidth feeding a scope."""

    bandwidth_hz: float = 1.0e9
    gain: float = 1.0
    scope: Oscilloscope = field(
        default_factory=lambda: Oscilloscope(
            sample_rate_hz=4.0e9, resolution_bits=10, noise_rms_v=1.0e-3
        )
    )

    def _filtered(self, response: PeriodicResponse) -> PeriodicResponse:
        """Apply the probe's single-pole roll-off to the harmonics."""
        f = response.harmonic_frequencies_hz
        h = self.gain / (1.0 + 1j * f / self.bandwidth_hz)
        v = response.die_voltage_harmonics * h
        # Keep the DC term untouched apart from gain.
        v[0] = response.die_voltage_harmonics[0] * self.gain
        return PeriodicResponse(
            sample_rate_hz=response.sample_rate_hz,
            nominal_voltage=response.nominal_voltage,
            die_voltage=response.die_voltage,
            die_current=response.die_current,
            harmonic_frequencies_hz=f,
            die_voltage_harmonics=v,
            die_current_harmonics=response.die_current_harmonics,
        )

    def capture(
        self, response: PeriodicResponse, duration_s: float = 2.0e-6
    ) -> ScopeCapture:
        """Probe the rail and capture on the attached scope."""
        return self.scope.capture(self._filtered(response), duration_s)

    def measure_max_droop(
        self, response: PeriodicResponse, duration_s: float = 2.0e-6
    ) -> float:
        return self.capture(response, duration_s).max_droop()

    def measure_peak_to_peak(
        self, response: PeriodicResponse, duration_s: float = 2.0e-6
    ) -> float:
        return self.capture(response, duration_s).peak_to_peak()
