"""Unit tests for the Table 1 registry."""

import pytest

from repro.platforms.base import Cluster, NoiseVisibility
from repro.platforms.registry import (
    PLATFORM_REGISTRY,
    PLATFORM_TABLE,
    by_cpu,
    make_cluster,
    platform_keys,
    render_registry,
    render_table,
    resolve,
)


class TestTable1:
    def test_three_rows(self):
        assert len(PLATFORM_TABLE) == 3

    def test_row_contents_match_paper(self):
        a72 = by_cpu("Cortex-A72")
        assert a72.motherboard == "Juno Board R2"
        assert a72.num_cores == 2
        assert a72.isa == "ARM"
        assert a72.nominal_clock_hz == pytest.approx(1.2e9)
        assert a72.nominal_voltage == 1.0
        assert a72.technology_nm == 16
        assert a72.visibility is NoiseVisibility.OC_DSO

        a53 = by_cpu("Cortex-A53")
        assert a53.microarchitecture == "In-Order"
        assert a53.nominal_clock_hz == pytest.approx(0.95e9)
        assert a53.visibility is NoiseVisibility.NONE

        amd = by_cpu("Athlon II X4 645")
        assert amd.isa == "x86-64"
        assert amd.nominal_clock_hz == pytest.approx(3.1e9)
        assert amd.nominal_voltage == pytest.approx(1.4)
        assert amd.technology_nm == 45
        assert amd.operating_system == "Windows 8.1"
        assert amd.visibility is NoiseVisibility.KELVIN_PADS

    def test_case_insensitive_lookup(self):
        assert by_cpu("cortex-a53").cpu == "Cortex-A53"

    def test_unknown_cpu(self):
        with pytest.raises(KeyError):
            by_cpu("Pentium III")

    def test_render_contains_all_rows(self):
        text = render_table()
        for row in PLATFORM_TABLE:
            assert row.cpu in text
        assert "OS" in text


class TestRunnableRegistry:
    def test_keys_cover_all_cli_platforms(self):
        assert platform_keys() == ("a72", "a53", "amd", "gpu")

    def test_every_table1_row_is_runnable(self):
        registered = {
            e.info.cpu for e in PLATFORM_REGISTRY.values() if e.info
        }
        assert registered == {r.cpu for r in PLATFORM_TABLE}

    def test_resolve_carries_table1_row(self):
        entry = resolve("a53")
        assert entry.in_table1
        assert entry.info is by_cpu("Cortex-A53")

    def test_gpu_is_extension_outside_table1(self):
        assert not resolve("gpu").in_table1

    def test_resolve_unknown_lists_known(self):
        with pytest.raises(KeyError, match="a72"):
            resolve("sparc")

    @pytest.mark.parametrize(
        "key,name",
        [
            ("a72", "cortex-a72"),
            ("a53", "cortex-a53"),
            ("amd", "amd-athlon-ii-x4-645"),
            ("gpu", "gpu-8cu"),
        ],
    )
    def test_make_cluster(self, key, name):
        cluster = make_cluster(key)
        assert isinstance(cluster, Cluster)
        assert cluster.name == name

    def test_factory_matches_table1_spec(self):
        entry = resolve("a72")
        cluster = entry.make_cluster()
        assert cluster.spec.num_cores == entry.info.num_cores
        assert cluster.spec.nominal_clock_hz == pytest.approx(
            entry.info.nominal_clock_hz
        )
        assert cluster.spec.visibility is entry.info.visibility

    def test_render_registry_lists_every_key(self):
        text = render_registry()
        for key in platform_keys():
            assert key in text
        assert "extension" in text
