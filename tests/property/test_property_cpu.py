"""Property-based tests on the CPU pipeline and current models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.arm import ARM_ISA
from repro.cpu.current import CurrentModel
from repro.cpu.pipeline import InOrderPipeline, OutOfOrderPipeline
from repro.cpu.program import random_program

program_seeds = st.integers(min_value=0, max_value=10_000)
lengths = st.integers(min_value=2, max_value=60)


@settings(max_examples=30, deadline=None)
@given(seed=program_seeds, length=lengths)
def test_steady_schedule_exists_for_any_program(seed, length):
    """Every valid program reaches a periodic steady state."""
    program = random_program(
        ARM_ISA, length, np.random.default_rng(seed)
    )
    schedule = InOrderPipeline(width=2).steady_schedule(program)
    assert schedule.cycles >= 1
    assert 0.0 < schedule.ipc <= 2.0


@settings(max_examples=30, deadline=None)
@given(seed=program_seeds, length=lengths)
def test_ooo_never_slower_than_in_order(seed, length):
    """With equal width/units, OoO throughput >= in-order throughput."""
    program = random_program(
        ARM_ISA, length, np.random.default_rng(seed)
    )
    io = InOrderPipeline(width=2).steady_schedule(program)
    ooo = OutOfOrderPipeline(width=2, window=48, rob_size=96).steady_schedule(
        program
    )
    # Schedules may cover different super-periods; compare throughput
    # (cycles per instruction) rather than raw period lengths.
    io_cpi = io.cycles / len(io.program)
    ooo_cpi = ooo.cycles / len(ooo.program)
    assert ooo_cpi <= io_cpi * 1.05 + 0.26


@settings(max_examples=30, deadline=None)
@given(seed=program_seeds)
def test_ipc_bounded_by_width(seed):
    program = random_program(ARM_ISA, 40, np.random.default_rng(seed))
    for width in (1, 2, 3):
        schedule = InOrderPipeline(width=width).steady_schedule(program)
        assert schedule.ipc <= width + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=program_seeds, length=lengths)
def test_current_trace_conserves_charge(seed, length):
    """Sum of (trace - base) equals total instruction energy."""
    program = random_program(
        ARM_ISA, length, np.random.default_rng(seed)
    )
    schedule = InOrderPipeline(width=2).steady_schedule(program)
    model = CurrentModel(
        base_current_a=0.25, amps_per_energy=1.0, frontend_energy=0.2,
        smoothing_cycles=4,
    )
    trace = model.trace(schedule)
    charge = float(np.sum(trace - model.base_current_a))
    # The steady period may span several loop iterations (a
    # super-period); each iteration injects the program's energy once.
    iterations = len(schedule.program) / len(program.body)
    expected = sum(i.spec.energy + 0.2 for i in program.body) * iterations
    assert charge == pytest.approx(expected, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=program_seeds)
def test_trace_is_nonnegative_and_finite(seed):
    program = random_program(ARM_ISA, 30, np.random.default_rng(seed))
    schedule = OutOfOrderPipeline().steady_schedule(program)
    trace = CurrentModel().trace(schedule)
    assert np.isfinite(trace).all()
    assert (trace > 0.0).all()


@settings(max_examples=20, deadline=None)
@given(seed=program_seeds)
def test_schedule_deterministic(seed):
    program = random_program(ARM_ISA, 30, np.random.default_rng(seed))
    s1 = InOrderPipeline(width=2).steady_schedule(program)
    s2 = InOrderPipeline(width=2).steady_schedule(program)
    assert s1.cycles == s2.cycles
    assert np.array_equal(s1.issue_offsets, s2.issue_offsets)
