"""Persistent warm-cache GA workers: determinism, transport, recovery.

The contract pinned here is that moving dispatch onto long-lived
warm-cache worker processes (``repro.ga.workers``) changes *nothing*
observable but wall-clock: ``workers=4`` histories stay byte-identical
to ``workers=1`` across multi-generation runs, through mid-run
checkpoint/resume, under injected worker crashes with respawn, and
with the shared-memory transport disabled (inline pickle fallback).
"""

import json
import multiprocessing
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.program import random_program
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import FitnessEvaluation
from repro.ga.parallel import ParallelEvaluator
from repro.ga.shm import (
    ProgramDecoder,
    ProgramEncoder,
    decode_evaluations,
    encode_evaluations,
    pack_arrays,
    release_block,
    unpack_arrays,
)
from repro.ga.workers import PersistentWorkerPool
from repro.io.serialization import load_checkpoint
from repro.obs.events import EventLog, MemorySink

from tests.ga.test_parallel import PureFitness

POLICY = RetryPolicy(max_retries=2, base_delay_s=0.0)

CONFIG = GAConfig(
    population_size=12, generations=6, loop_length=20, seed=4
)


def _programs(count=6, length=12, seed=3):
    rng = np.random.default_rng(seed)
    return [
        random_program(ARM_ISA, length, rng, name=f"w{i}")
        for i in range(count)
    ]


def _evaluation(score):
    return FitnessEvaluation(
        score=score,
        dominant_frequency_hz=0.0,
        max_droop_v=0.0,
        peak_to_peak_v=0.0,
        ipc=1.0,
        loop_frequency_hz=1.0,
    )


def history_bytes(result) -> bytes:
    """A ``GAResult``'s history as canonical bytes (config excluded,
    so runs that differ only in ``workers`` can be compared)."""
    return json.dumps(
        [
            [
                rec.generation,
                rec.mean_score,
                rec.best.__dict__,
                rec.best_program.genome(),
            ]
            for rec in result.history
        ],
        sort_keys=True,
    ).encode()


def _assert_byte_identical(a, b):
    assert history_bytes(a) == history_bytes(b)
    assert a.evaluations == b.evaluations


# ---------------------------------------------------------------------------
# ndarray transport (repro.ga.shm)
# ---------------------------------------------------------------------------
class TestTransportCodecs:
    def test_program_codec_roundtrips_genomes(self):
        programs = _programs(count=5, length=17)
        header, arrays = ProgramEncoder().encode(programs)
        assert header["kind"] == "arrays"
        decoded = ProgramDecoder().decode(header, arrays)
        assert [p.genome() for p in decoded] == [
            p.genome() for p in programs
        ]
        assert [p.name for p in decoded] == [p.name for p in programs]

    def test_program_encoder_pickles_each_isa_once(self):
        encoder = ProgramEncoder()
        encoder.encode(_programs(count=3))
        header, _ = encoder.encode(_programs(count=4, seed=8))
        assert set(header["isa_tokens"]) == {0}

    def test_eval_codec_is_bit_identical(self):
        evals = [_evaluation(0.1 + i * 1e-9) for i in range(7)]
        header, arrays = encode_evaluations(evals)
        assert header["kind"] == "arrays"
        assert decode_evaluations(header, arrays) == evals

    def test_eval_codec_falls_back_for_exotic_results(self):
        # An int score must survive with its type, not become float64.
        exotic = _evaluation(1.0)
        exotic.score = 3
        header, arrays = encode_evaluations([exotic])
        assert header["kind"] == "pickle"
        (back,) = decode_evaluations(header, arrays)
        assert back.score == 3 and type(back.score) is int

    def test_shm_roundtrip_and_release(self):
        arrays = [
            np.arange(2048, dtype=np.int64).reshape(64, 32),
            np.linspace(0.0, 1.0, 900),
        ]
        bundle, owner = pack_arrays(arrays, use_shm=True, min_bytes=0)
        assert bundle.via == "shm" and owner is not None
        back = unpack_arrays(bundle)
        release_block(owner)
        for sent, got in zip(arrays, back):
            np.testing.assert_array_equal(sent, got)
            assert got.dtype == sent.dtype

    def test_small_or_disabled_payloads_go_inline(self):
        arrays = [np.arange(4)]
        for use_shm in (True, False):
            bundle, owner = pack_arrays(arrays, use_shm=use_shm)
            assert bundle.via == "inline" and owner is None
            np.testing.assert_array_equal(
                unpack_arrays(bundle)[0], arrays[0]
            )


# ---------------------------------------------------------------------------
# the pool itself
# ---------------------------------------------------------------------------
class TestPersistentPool:
    def test_dispatch_matches_serial_and_emits_warmup(self):
        import pickle

        from repro.faults.plan import NULL_INJECTOR

        programs = _programs(count=8)
        fitness = PureFitness()
        expected = [fitness(p).score for p in programs]
        sink = MemorySink()
        payload = pickle.dumps((PureFitness(), NULL_INJECTOR, None))
        with PersistentWorkerPool(
            payload, workers=2, event_log=EventLog([sink])
        ) as pool:
            pool.start()
            outcomes = pool.dispatch(
                {0: programs[:4], 1: programs[4:]}
            )
        assert [o.kind for o in outcomes.values()] == ["ok", "ok"]
        got = [
            e.score
            for i in (0, 1)
            for e in outcomes[i].results
        ]
        assert got == expected
        warmups = sink.events("worker_warmup")
        assert len(warmups) == 2
        assert {w["worker"] for w in warmups} == {0, 1}
        for w in warmups:
            assert w["respawned"] is False
            assert w["warmup_s"] >= 0.0
            assert w["pid"]

    def test_pool_survives_many_generations_of_dispatch(self):
        import pickle

        from repro.faults.plan import NULL_INJECTOR

        fitness = PureFitness()
        payload = pickle.dumps((PureFitness(), NULL_INJECTOR, None))
        with PersistentWorkerPool(payload, workers=2) as pool:
            for gen in range(4):
                programs = _programs(count=6, seed=100 + gen)
                outcomes = pool.dispatch(
                    {0: programs[:3], 1: programs[3:]}
                )
                got = [
                    e.score
                    for i in (0, 1)
                    for e in outcomes[i].results
                ]
                assert got == [fitness(p).score for p in programs]
            assert pool.respawns == 0


class DieOnceFitness:
    """Hard-kills the first worker process that evaluates; pure after.

    A filesystem marker (``O_EXCL``) makes exactly one worker die, so
    the test exercises real process death -> respawn with warm-up
    replay -> successful re-dispatch, without degrading the pool.
    """

    def __init__(self, marker: str):
        self.marker = marker

    def __call__(self, program):
        if multiprocessing.parent_process() is not None:
            try:
                fd = os.open(
                    self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os._exit(1)
        return _evaluation(float(len(program.body)))


class TestCrashRespawn:
    def test_real_death_respawns_with_warmup_replay(self, tmp_path):
        programs = _programs(count=6)
        expected = [float(len(p.body)) for p in programs]
        sink = MemorySink()
        with ParallelEvaluator(
            DieOnceFitness(str(tmp_path / "died")),
            workers=2,
            retry_policy=POLICY,
            event_log=EventLog([sink]),
        ) as evaluator:
            got = [e.score for e in evaluator.evaluate(programs)]
        assert got == expected
        assert evaluator.pool_crashes == 1
        assert not evaluator.degraded
        # The dead worker was replaced and re-ran its warm-up.
        respawned = [
            w for w in sink.events("worker_warmup") if w["respawned"]
        ]
        assert len(respawned) == 1
        crashes = sink.events("worker_crash")
        assert crashes and "died mid-shard" in crashes[0]["error"]

    def test_injected_crash_run_matches_workers_1(self):
        """Fault-plan worker crashes + respawn machinery must not
        perturb the history relative to a serial fault-free run."""
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.shard",
                        kind="worker_crash",
                        at_visit=0,
                        times=1,
                    ),
                )
            )
        )
        serial = GAEngine(PureFitness(), CONFIG).run(ARM_ISA)
        chaotic = GAEngine(
            PureFitness(),
            replace(CONFIG, workers=4),
            retry_policy=POLICY,
            fault_injector=injector,
        ).run(ARM_ISA)
        _assert_byte_identical(serial, chaotic)


# ---------------------------------------------------------------------------
# engine-level bit-identity
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_workers_4_resume_mid_run_matches_workers_1(self, tmp_path):
        """workers=4 with a mid-run kill + resume reproduces the
        serial uninterrupted history byte for byte."""
        serial = GAEngine(PureFitness(), CONFIG).run(ARM_ISA)

        parallel_cfg = replace(CONFIG, workers=4)
        ckpt = tmp_path / "workers.ckpt.json"
        GAEngine(
            PureFitness(), replace(parallel_cfg, generations=3)
        ).run(ARM_ISA, checkpoint_path=ckpt, checkpoint_every=1)
        resumed = GAEngine(PureFitness(), parallel_cfg).run(
            ARM_ISA, resume=load_checkpoint(ckpt)
        )
        _assert_byte_identical(serial, resumed)

    def test_shm_disabled_fallback_matches_workers_1(self, monkeypatch):
        monkeypatch.setenv("REPRO_GA_SHM", "0")
        serial = GAEngine(PureFitness(), CONFIG).run(ARM_ISA)
        parallel = GAEngine(
            PureFitness(), replace(CONFIG, workers=4)
        ).run(ARM_ISA)
        _assert_byte_identical(serial, parallel)

    def test_explicit_use_shm_flag_matches_serial(self):
        programs = _programs(count=8)
        fitness = PureFitness()
        expected = [fitness(p).score for p in programs]
        for use_shm in (True, False):
            with ParallelEvaluator(
                PureFitness(), workers=2, use_shm=use_shm
            ) as evaluator:
                got = [
                    e.score for e in evaluator.evaluate(programs)
                ]
            assert got == expected


# ---------------------------------------------------------------------------
# warm-up hooks
# ---------------------------------------------------------------------------
class TestWarmUpHooks:
    def test_session_warm_up_primes_cluster_state(self):
        from repro.chain import SimulationSession
        from repro.platforms.juno import make_juno_board

        cluster = make_juno_board().a72
        session = SimulationSession()
        stats = session.warm_up(cluster=cluster)
        assert stats["invalidations"] == 0
        # The snapshot is memoized: same object back, no version bump.
        assert session.cluster_state(cluster) is session.cluster_state(
            cluster
        )

    def test_fitness_warm_up_does_not_perturb_scores(self):
        from repro.ga.fitness import ClusterFitness, EMAmplitudeFitness
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
        from repro.platforms.juno import make_juno_board

        def make(seed):
            return ClusterFitness(
                EMAmplitudeFitness(
                    analyzer=SpectrumAnalyzer(
                        rng=np.random.default_rng(seed)
                    ),
                    samples=3,
                ),
                make_juno_board().a72,
            )

        program = _programs(count=1)[0]
        cold, warmed = make(9), make(9)
        stats = warmed.warm_up()
        assert isinstance(stats, dict)
        # Warming is RNG-free: same program, same analyzer noise, same
        # score as the never-warmed twin.
        assert warmed(program) == cold(program)
        after = warmed.session_stats()
        assert after is not None and after["execute_misses"] >= 1

    def test_generation_end_carries_worker_cache_stats(self):
        from repro.ga.fitness import ClusterFitness, EMAmplitudeFitness
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
        from repro.platforms.juno import make_juno_board

        fitness = ClusterFitness(
            EMAmplitudeFitness(
                analyzer=SpectrumAnalyzer(rng=np.random.default_rng(3)),
                samples=2,
            ),
            make_juno_board().a72,
        )
        sink = MemorySink()
        GAEngine(
            fitness,
            GAConfig(
                population_size=4,
                generations=2,
                loop_length=5,
                seed=1,
                workers=2,
            ),
        ).run(ARM_ISA, event_log=EventLog([sink]))
        warmups = sink.events("worker_warmup")
        assert len(warmups) == 2
        # Workers warmed their sessions before the first shard.
        assert all(
            isinstance(w["cache_stats"], dict) for w in warmups
        )
        gen_ends = sink.events("generation_end")
        assert gen_ends
        stats = gen_ends[-1]["worker_cache_stats"]
        assert stats and all(
            "execute_misses" in s for s in stats.values()
        )
