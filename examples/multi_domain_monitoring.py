#!/usr/bin/env python3
"""Simultaneous voltage-noise monitoring of multiple domains (Fig. 15).

A scope probes one rail; an antenna hears the whole SoC.  Run dI/dt
viruses on both Juno clusters at once and pick out each domain's
frequency signature in a single spectrum-analyzer sweep -- the
heterogeneous-SoC capability direct probing cannot offer.

Run:  python examples/multi_domain_monitoring.py
"""

import numpy as np

from repro import EMCharacterizer, VirusGenerator
from repro import make_juno_board
from repro.ga import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

GA = GAConfig(population_size=24, generations=20, loop_length=50, seed=8)


def main() -> None:
    juno = make_juno_board()
    characterizer = EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(21)),
        samples=8,
    )

    print("Generating per-cluster viruses...")
    virus72 = VirusGenerator(
        juno.a72, characterizer, config=GA
    ).generate_em_virus()
    virus53 = VirusGenerator(
        juno.a53, characterizer, config=GA
    ).generate_em_virus()
    print(
        f"  cortex-a72 virus signature: "
        f"{virus72.dominant_frequency_hz / 1e6:.1f} MHz"
    )
    print(
        f"  cortex-a53 virus signature: "
        f"{virus53.dominant_frequency_hz / 1e6:.1f} MHz"
    )

    print("\nRunning both viruses simultaneously; one antenna sweep:")
    run72 = juno.a72.run(virus72.virus)
    run53 = juno.a53.run(virus53.virus)
    md = characterizer.monitor_domains(
        {"cortex-a72": run72, "cortex-a53": run53}
    )
    floor = float(np.median(md.trace.power_dbm))
    print(f"  displayed noise floor ~ {floor:.1f} dBm")
    for domain, (freq, dbm) in sorted(md.domain_peaks.items()):
        print(
            f"  {domain:12s} spike at {freq / 1e6:6.1f} MHz, "
            f"{dbm:6.1f} dBm ({dbm - floor:+.1f} dB over floor)"
        )
    visible = md.visible_domains()
    print(
        f"\n  Domains visible in one sweep: {', '.join(sorted(visible))}"
    )
    print(
        "  -> voltage emergencies on separate rails are detected "
        "simultaneously, which no single-rail probe can do."
    )


if __name__ == "__main__":
    main()
