"""Unit tests for the Table 1 registry."""

import pytest

from repro.platforms.base import NoiseVisibility
from repro.platforms.registry import PLATFORM_TABLE, by_cpu, render_table


class TestTable1:
    def test_three_rows(self):
        assert len(PLATFORM_TABLE) == 3

    def test_row_contents_match_paper(self):
        a72 = by_cpu("Cortex-A72")
        assert a72.motherboard == "Juno Board R2"
        assert a72.num_cores == 2
        assert a72.isa == "ARM"
        assert a72.nominal_clock_hz == pytest.approx(1.2e9)
        assert a72.nominal_voltage == 1.0
        assert a72.technology_nm == 16
        assert a72.visibility is NoiseVisibility.OC_DSO

        a53 = by_cpu("Cortex-A53")
        assert a53.microarchitecture == "In-Order"
        assert a53.nominal_clock_hz == pytest.approx(0.95e9)
        assert a53.visibility is NoiseVisibility.NONE

        amd = by_cpu("Athlon II X4 645")
        assert amd.isa == "x86-64"
        assert amd.nominal_clock_hz == pytest.approx(3.1e9)
        assert amd.nominal_voltage == pytest.approx(1.4)
        assert amd.technology_nm == 45
        assert amd.operating_system == "Windows 8.1"
        assert amd.visibility is NoiseVisibility.KELVIN_PADS

    def test_case_insensitive_lookup(self):
        assert by_cpu("cortex-a53").cpu == "Cortex-A53"

    def test_unknown_cpu(self):
        with pytest.raises(KeyError):
            by_cpu("Pentium III")

    def test_render_contains_all_rows(self):
        text = render_table()
        for row in PLATFORM_TABLE:
            assert row.cpu in text
        assert "OS" in text
