"""Fast resonance-frequency detection (Section 5.3).

A fixed high/low-current loop (eight ADDs, one DIV) radiates an EM
spike at its loop frequency.  Sweeping the CPU clock modulates the
loop frequency; the spike's amplitude is maximized when the loop
frequency crosses the PDN's first-order resonance.  The whole sweep
takes ~15 minutes on hardware versus many hours for a GA run, and
is the tool that exposes the power-gating resonance shifts of
Figs. 11, 13 and 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.chain import ChainItem, ChainRequest, OperatingPoint
from repro.core.characterizer import EMCharacterizer
from repro.core.results import JsonResultMixin
from repro.obs.context import RunContext
from repro.platforms.base import Cluster
from repro.workloads.loops import high_low_program


@dataclass
class SweepPoint:
    """One clock point of the sweep."""

    clock_hz: float
    loop_frequency_hz: float
    amplitude_w: float


@dataclass
class SweepResult(JsonResultMixin):
    """Outcome of a clock-modulated loop-frequency sweep."""

    cluster_name: str
    powered_cores: int
    points: List[SweepPoint]

    kind = "resonance-sweep"

    def resonance_hz(self) -> float:
        """Loop frequency with the maximum EM amplitude."""
        best = max(self.points, key=lambda p: p.amplitude_w)
        return best.loop_frequency_hz

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(loop_frequencies_hz, amplitudes) sorted by frequency."""
        pts = sorted(self.points, key=lambda p: p.loop_frequency_hz)
        return (
            np.array([p.loop_frequency_hz for p in pts]),
            np.array([p.amplitude_w for p in pts]),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cluster_name": self.cluster_name,
            "powered_cores": self.powered_cores,
            "points": [
                {
                    "clock_hz": p.clock_hz,
                    "loop_frequency_hz": p.loop_frequency_hz,
                    "amplitude_w": p.amplitude_w,
                }
                for p in self.points
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        return cls(
            cluster_name=data["cluster_name"],
            powered_cores=int(data["powered_cores"]),
            points=[
                SweepPoint(
                    clock_hz=float(p["clock_hz"]),
                    loop_frequency_hz=float(p["loop_frequency_hz"]),
                    amplitude_w=float(p["amplitude_w"]),
                )
                for p in data["points"]
            ],
        )


class ResonanceSweep:
    """Drives the fast sweep against a cluster through an EM receive chain."""

    def __init__(
        self,
        characterizer: EMCharacterizer,
        samples_per_point: int = 5,
    ):
        self.characterizer = characterizer
        self.samples_per_point = samples_per_point

    def run(
        self,
        target: RunContext,
        clocks_hz: Optional[Sequence[float]] = None,
        active_cores: Optional[int] = None,
    ) -> SweepResult:
        """Sweep the cluster clock and record the EM spike amplitude.

        ``target`` must be a :class:`repro.obs.context.RunContext`; the
        sweep runs against ``target.cluster`` and reports each point to
        ``target.event_log``.  (The pre-context bare-``Cluster``
        signature was removed; wrap the cluster:
        ``sweep.run(RunContext(cluster=cluster))``.)

        ``clocks_hz`` defaults to every multiplier-reachable point from
        nominal down (the paper steps the A72 from 1.2 GHz to 120 MHz
        in 20 MHz steps).  The whole sweep is one batched chain call --
        the cluster's clock is never mutated, each point carries its
        clock as a per-item operating point -- so K points share one
        schedule and at most one AC transfer-function analysis per
        distinct cluster state.
        """
        if not isinstance(target, RunContext):
            raise TypeError(
                "ResonanceSweep.run requires a repro.obs.RunContext; "
                "the bare-Cluster signature was removed -- wrap it: "
                "run(RunContext(cluster=...))"
            )
        cluster = target.cluster
        event_log = target.event_log
        if active_cores is None:
            active_cores = target.active_cores
        program = high_low_program(cluster.spec.isa)
        clocks = (
            list(clocks_hz)
            if clocks_hz is not None
            else list(cluster.spec.allowed_clocks_hz())
        )
        event_log.emit(
            "sweep_start",
            cluster=cluster.name,
            points=len(clocks),
            powered_cores=cluster.powered_cores,
            samples_per_point=self.samples_per_point,
        )
        characterizer = self.characterizer
        request = ChainRequest(
            cluster=cluster,
            items=[
                ChainItem(
                    program=program,
                    operating_point=OperatingPoint(clock_hz=clock),
                    active_cores=active_cores,
                )
                for clock in clocks
            ],
            band=characterizer.band,
            samples=self.samples_per_point,
            want_amplitude=True,
            want_trace=True,
        )
        chain_result = characterizer.chain_path().run(
            request, event_log=event_log
        )
        points: List[SweepPoint] = []
        for clock, item in zip(clocks, chain_result.items):
            points.append(
                SweepPoint(
                    clock_hz=clock,
                    loop_frequency_hz=item.loop_frequency_hz,
                    amplitude_w=item.amplitude_w,
                )
            )
            event_log.emit(
                "sweep_point",
                clock_hz=clock,
                loop_frequency_hz=item.loop_frequency_hz,
                amplitude_w=item.amplitude_w,
            )
        result = SweepResult(
            cluster_name=cluster.name,
            powered_cores=cluster.powered_cores,
            points=points,
        )
        event_log.emit(
            "sweep_end",
            cluster=cluster.name,
            resonance_hz=result.resonance_hz() if points else None,
            stage_times_s=chain_result.stage_times_s,
            cache_stats=chain_result.cache_stats,
        )
        return result

    def power_gating_study(
        self,
        target: Union[RunContext, Cluster],
        core_counts: Optional[Sequence[int]] = None,
        clocks_hz: Optional[Sequence[float]] = None,
    ) -> List[SweepResult]:
        """Sweep at several power-gating states (Figs. 8, 11, 13).

        Only the first core stays active in every state, so the load
        current is constant and amplitude differences isolate the PDN
        capacitance change -- the Section 6 experiment.
        """
        if isinstance(target, RunContext):
            ctx = target
        else:
            ctx = RunContext(cluster=target)
        cluster = ctx.cluster
        counts = (
            list(core_counts)
            if core_counts is not None
            else list(range(cluster.spec.num_cores, 0, -1))
        )
        saved = cluster.powered_cores
        results = []
        try:
            for count in counts:
                cluster.power_gate(count)
                results.append(
                    self.run(ctx, clocks_hz=clocks_hz, active_cores=1)
                )
        finally:
            cluster.power_gate(saved)
        return results
