"""Extension: are dI/dt viruses portable across CPUs? (Section 8)

The paper generates a separate virus per platform because each PDN has
its own resonance.  This study quantifies the specificity on the two
ARM clusters (same ISA, so binaries are portable): each cluster's own
EM virus is run on the *other* cluster and its voltage noise compared
against the native virus.  The native virus wins on its home cluster --
a 67 MHz-tuned loop does not ring a 76.5 MHz tank as hard -- which is
exactly why post-silicon characterization must be per-platform.
"""

from repro.workloads.base import ProgramWorkload

from benchmarks.conftest import print_header


def test_ext_virus_portability(
    benchmark, juno_board, a72_em_virus, a53_em_virus
):
    a72 = juno_board.a72
    a53 = juno_board.a53
    a72.reset()
    a53.reset()

    def run_matrix():
        results = {}
        for cluster in (a72, a53):
            for label, summary in (
                ("a72em", a72_em_virus),
                ("a53em", a53_em_virus),
            ):
                wl = ProgramWorkload(label, summary.virus, jitter_seed=None)
                run = wl.run(cluster)
                results[(cluster.name, label)] = run.peak_to_peak
        return results

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_header("Extension: cross-platform virus portability (ARM pair)")
    print(f"{'virus':<8} {'on cortex-a72':>15} {'on cortex-a53':>15}")
    for label in ("a72em", "a53em"):
        print(
            f"{label:<8} "
            f"{results[('cortex-a72', label)] * 1e3:>12.1f} mV "
            f"{results[('cortex-a53', label)] * 1e3:>12.1f} mV"
        )

    # each virus is strongest on its home cluster
    assert results[("cortex-a72", "a72em")] > results[
        ("cortex-a72", "a53em")
    ]
    assert results[("cortex-a53", "a53em")] > results[
        ("cortex-a53", "a72em")
    ]
    # and the specificity is substantial (>20 % noise advantage at home)
    assert results[("cortex-a72", "a72em")] > 1.2 * results[
        ("cortex-a72", "a53em")
    ]
