"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, resolve_cluster
from repro.obs.events import read_jsonl
from repro.obs.manifest import RunManifest

VIRUS_ARGS = [
    "virus", "--platform", "a53",
    "--population", "6", "--generations", "3", "--loop-length", "6",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_platform_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--platform", "m1"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8423
        assert args.rate is None
        assert args.state_dir is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--rate", "2.5",
             "--state-dir", "/tmp/svc", "--timeout", "30"]
        )
        assert args.port == 0
        assert args.rate == 2.5
        assert args.state_dir == "/tmp/svc"
        assert args.timeout == 30.0


class TestResolve:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("a72", "cortex-a72"),
            ("a53", "cortex-a53"),
            ("amd", "amd-athlon-ii-x4-645"),
            ("gpu", "gpu-8cu"),
        ],
    )
    def test_resolve_cluster(self, name, expected):
        assert resolve_cluster(name).name == expected

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            resolve_cluster("sparc")


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Cortex-A72" in out and "Athlon" in out

    def test_impedance(self, capsys):
        assert main(
            ["impedance", "--platform", "a72", "--points", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "first-order resonance" in out
        assert "67" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--platform", "a72", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "first-order resonance" in out

    def test_virus_to_stdout(self, capsys):
        assert main(
            [
                "virus", "--platform", "a72",
                "--population", "8", "--generations", "3",
                "--loop-length", "16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "virus for cortex-a72" in out
        assert "b " in out  # assembly back-edge

    def test_virus_archive_and_vmin(self, capsys, tmp_path):
        assert main(
            [
                "virus", "--platform", "a72",
                "--population", "8", "--generations", "3",
                "--loop-length", "16", "--out", str(tmp_path),
            ]
        ) == 0
        capsys.readouterr()
        meta = tmp_path / "cortex-a72-em-amplitude.meta.json"
        assert meta.exists()
        assert main(
            [
                "vmin", "--platform", "a72",
                "--workloads", "idle",
                "--virus", str(meta),
                "--virus-repeats", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "idle" in out and "virus" in out

    def test_vmin_unknown_workload(self, capsys):
        assert main(
            ["vmin", "--platform", "a72", "--workloads", "doom"]
        ) == 2

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for key in ("a72", "a53", "amd", "gpu"):
            assert key in out

    def test_report(self, capsys):
        assert main(
            [
                "report", "--platform", "a72",
                "--population", "8", "--generations", "3",
                "--no-vmin",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "# PDN characterization: cortex-a72" in out
        assert "EM-driven dI/dt virus" in out
        assert "V_MIN ladder" not in out


class TestArtifactProvenance:
    def test_virus_out_writes_manifest_and_event_log(
        self, capsys, tmp_path
    ):
        assert main(VIRUS_ARGS + ["--out", str(tmp_path)]) == 0
        capsys.readouterr()
        manifest = RunManifest.load(tmp_path)
        assert manifest.command == "virus"
        assert manifest.platform == "a53"
        assert manifest.config["generations"] == 3
        assert manifest.event_log == "events.jsonl"
        for artifact in manifest.artifacts:
            assert (tmp_path / artifact).exists()
        events = read_jsonl(tmp_path / manifest.event_log)
        names = [e["event"] for e in events]
        assert "ga_run_start" in names
        assert names.count("generation_end") == 3
        assert "checkpoint_saved" not in names  # every 5 > 3 gens
        assert "ga_run_end" in names

    def test_sweep_out_writes_manifest_and_result(
        self, capsys, tmp_path
    ):
        assert main(
            [
                "sweep", "--platform", "a72", "--samples", "2",
                "--out", str(tmp_path),
            ]
        ) == 0
        capsys.readouterr()
        manifest = RunManifest.load(tmp_path)
        assert manifest.command == "sweep"
        assert (tmp_path / "cortex-a72-sweep.json").exists()
        events = read_jsonl(tmp_path / manifest.event_log)
        assert any(e["event"] == "sweep_point" for e in events)

    def test_provenance_regenerates_report(self, capsys, tmp_path):
        assert main(VIRUS_ARGS + ["--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["provenance", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# Run report: virus on a53" in out
        assert "## GA convergence (from event log)" in out
        assert "## Archived virus (from summary artifact)" in out


class TestResumeFlow:
    def test_interrupted_run_resumes_identically(
        self, capsys, tmp_path
    ):
        full_dir = tmp_path / "full"
        part_dir = tmp_path / "part"
        assert main(VIRUS_ARGS + ["--out", str(full_dir)]) == 0
        # truncated campaign, checkpointing every generation
        assert main(
            [
                "virus", "--platform", "a53",
                "--population", "6", "--generations", "2",
                "--loop-length", "6",
                "--out", str(part_dir), "--checkpoint-every", "1",
            ]
        ) == 0
        ckpt = part_dir / "checkpoint.json"
        assert ckpt.exists()
        assert main(
            VIRUS_ARGS
            + [
                "--out", str(part_dir),
                "--checkpoint-every", "1",
                "--resume", str(ckpt),
            ]
        ) == 0
        capsys.readouterr()

        name = "cortex-a53-em-amplitude.summary.json"
        full = json.loads((full_dir / name).read_text())
        resumed = json.loads((part_dir / name).read_text())
        assert resumed == full  # byte-identical continuation

        manifest = RunManifest.load(part_dir)
        assert manifest.extra["resumed_from"] == str(ckpt)
        assert manifest.extra["checkpoint"] == "checkpoint.json"

    def test_resume_missing_file_fails_with_one_line_error(
        self, capsys, tmp_path
    ):
        """No traceback: a clear one-liner naming the path, exit 2."""
        missing = tmp_path / "nope.json"
        assert main(VIRUS_ARGS + ["--resume", str(missing)]) == 2
        err = capsys.readouterr().err
        assert f"error: cannot resume from {missing}" in err
        assert str(missing) in err

    def test_resume_missing_island_dir_fails_with_one_line_error(
        self, capsys, tmp_path
    ):
        missing = tmp_path / "no-island-checkpoints"
        args = VIRUS_ARGS + [
            "--islands", "2", "--migration-interval", "1",
            "--resume", str(missing),
        ]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert f"error: cannot resume from {missing}" in err

    def test_resume_empty_island_dir_fails_with_one_line_error(
        self, capsys, tmp_path
    ):
        empty = tmp_path / "island-checkpoints"
        empty.mkdir()
        args = VIRUS_ARGS + [
            "--islands", "2", "--migration-interval", "1",
            "--resume", str(empty),
        ]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert f"error: cannot resume from {empty}" in err
        assert "islands.json" in err


class TestIslandFlow:
    ISLAND_ARGS = VIRUS_ARGS + [
        "--islands", "2", "--migration-interval", "1",
    ]

    def test_island_run_archives_manifest_and_checkpoints(
        self, capsys, tmp_path
    ):
        assert main(self.ISLAND_ARGS + ["--out", str(tmp_path)]) == 0
        capsys.readouterr()
        manifest = RunManifest.load(tmp_path)
        assert manifest.extra["islands"] == {
            "islands": 2, "topology": "ring", "migration_interval": 1,
        }
        ckpt_dir = tmp_path / "island-checkpoints"
        assert (ckpt_dir / "islands.json").exists()
        assert (ckpt_dir / "island-00.json").exists()
        assert (ckpt_dir / "island-01.json").exists()
        events = read_jsonl(tmp_path / manifest.event_log)
        names = [e["event"] for e in events]
        assert "island_run_start" in names
        assert "migration_start" in names
        assert "island_run_end" in names

    def test_interrupted_island_run_resumes_identically(
        self, capsys, tmp_path
    ):
        full_dir = tmp_path / "full"
        part_dir = tmp_path / "part"
        assert main(self.ISLAND_ARGS + ["--out", str(full_dir)]) == 0
        # truncated campaign: two of three generations
        assert main(
            [
                "virus", "--platform", "a53",
                "--population", "6", "--generations", "2",
                "--loop-length", "6",
                "--islands", "2", "--migration-interval", "1",
                "--out", str(part_dir),
            ]
        ) == 0
        ckpt_dir = part_dir / "island-checkpoints"
        assert (ckpt_dir / "islands.json").exists()
        assert main(
            self.ISLAND_ARGS
            + ["--out", str(part_dir), "--resume", str(ckpt_dir)]
        ) == 0
        capsys.readouterr()

        name = "cortex-a53-em-amplitude.summary.json"
        full = (full_dir / name).read_text()
        resumed = (part_dir / name).read_text()
        assert resumed == full  # byte-identical continuation

        manifest = RunManifest.load(part_dir)
        assert manifest.extra["resumed_from"] == str(ckpt_dir)

    def test_island_run_identical_under_audit(self, capsys, tmp_path):
        plain_dir = tmp_path / "plain"
        audit_dir = tmp_path / "audit"
        assert main(self.ISLAND_ARGS + ["--out", str(plain_dir)]) == 0
        assert main(
            self.ISLAND_ARGS + ["--out", str(audit_dir), "--audit"]
        ) == 0
        capsys.readouterr()
        name = "cortex-a53-em-amplitude.summary.json"
        plain = (plain_dir / name).read_text()
        audited = (audit_dir / name).read_text()
        assert audited == plain


class TestFaultPlanFlow:
    @staticmethod
    def _plan(tmp_path, specs):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(
            specs=tuple(FaultSpec(**s) for s in specs)
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        return path

    def test_virus_under_fault_plan_matches_fault_free(
        self, capsys, tmp_path
    ):
        """A transient chain fault retried to success leaves the
        archived campaign byte-identical to the fault-free one."""
        clean_dir = tmp_path / "clean"
        chaos_dir = tmp_path / "chaos"
        plan = self._plan(
            tmp_path,
            [{"site": "chain.receive", "at_visit": 0}],
        )
        assert main(VIRUS_ARGS + ["--out", str(clean_dir)]) == 0
        assert main(
            VIRUS_ARGS
            + [
                "--out", str(chaos_dir),
                "--fault-plan", str(plan),
                "--max-retries", "2",
            ]
        ) == 0
        capsys.readouterr()
        name = "cortex-a53-em-amplitude.summary.json"
        clean = (clean_dir / name).read_text()
        chaos = (chaos_dir / name).read_text()
        assert chaos == clean
        events = read_jsonl(chaos_dir / "events.jsonl")
        names = [e["event"] for e in events]
        assert "fault_injected" in names
        assert "retry_attempt" in names
        manifest = RunManifest.load(chaos_dir)
        assert manifest.extra["fault_plan"] == str(plan)
        assert manifest.extra["max_retries"] == 2

    def test_bad_fault_plan_path_errors_cleanly(self, capsys, tmp_path):
        assert main(
            VIRUS_ARGS
            + ["--fault-plan", str(tmp_path / "missing.json")]
        ) == 2
        assert "bad fault plan" in capsys.readouterr().err

    def test_malformed_fault_plan_errors_cleanly(
        self, capsys, tmp_path
    ):
        path = tmp_path / "plan.json"
        path.write_text('{"kind": "not-a-plan"}', encoding="utf-8")
        assert main(VIRUS_ARGS + ["--fault-plan", str(path)]) == 2
        assert "bad fault plan" in capsys.readouterr().err
