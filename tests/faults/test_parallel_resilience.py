"""Chaos tests for the parallel evaluator and GA engine.

Worker crashes (raised, injected, or hard process death), dispatch
timeouts and persistently failing genomes must never kill a campaign:
shards are re-dispatched, the evaluator degrades to serial after
repeated crashes, and poisoned genomes are quarantined with a penalty
score -- all without perturbing the scores of the healthy population.
"""

import multiprocessing
import os
import time

import pytest

from repro.cpu.arm import ARM_ISA
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TransientFault,
    WorkerCrash,
)
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import FitnessEvaluation
from repro.ga.parallel import (
    PENALTY_SCORE,
    ParallelEvaluator,
    penalty_evaluation,
)
from repro.obs.events import EventLog, MemorySink

from tests.ga.test_parallel import PureFitness

POLICY = RetryPolicy(max_retries=2, base_delay_s=0.0)


def _evaluation(score):
    return FitnessEvaluation(
        score=score,
        dominant_frequency_hz=0.0,
        max_droop_v=0.0,
        peak_to_peak_v=0.0,
        ipc=1.0,
        loop_frequency_hz=1.0,
    )


class PoisonedFitness:
    """Pure fitness that always faults on programs named ``poison*``."""

    def __call__(self, program):
        if program.name.startswith("poison"):
            raise TransientFault(
                f"instrument rejected {program.name}",
                site="chain.receive",
            )
        return _evaluation(float(len(program.body)))


class DyingWorkerFitness:
    """Hard-kills the hosting *worker* process; benign in the parent.

    Exercises the ``BrokenProcessPool`` path: the executor loses the
    worker entirely, so recovery requires tearing the pool down and
    eventually degrading to serial (where this fitness is pure).
    """

    def __call__(self, program):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return _evaluation(float(len(program.body)))


class SlowWorkerFitness:
    """Hangs in worker processes; instant in the parent.

    Exercises the dispatch-timeout path: ``RetryPolicy.timeout_s``
    converts a hung shard into a crash event.
    """

    def __call__(self, program):
        if multiprocessing.parent_process() is not None:
            time.sleep(1.5)
        return _evaluation(float(len(program.body)))


def _programs(count=8, length=10, seed=5, name="ind"):
    import numpy as np

    from repro.cpu.program import random_program

    rng = np.random.default_rng(seed)
    return [
        random_program(ARM_ISA, length, rng, name=f"{name}{i}")
        for i in range(count)
    ]


def _crashy_injector(times=1):
    """Every worker process crashes its first ``times`` shard visits."""
    return FaultInjector(
        FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.shard",
                    kind="worker_crash",
                    at_visit=0,
                    times=times,
                ),
            )
        )
    )


class TestWorkerCrashRecovery:
    def test_injected_crashes_are_redispatched(self):
        programs = _programs()
        fitness = PureFitness()
        expected = [fitness(p).score for p in programs]
        sink = MemorySink()
        with ParallelEvaluator(
            PureFitness(),
            workers=2,
            retry_policy=POLICY,
            fault_injector=_crashy_injector(),
            event_log=EventLog([sink]),
        ) as evaluator:
            got = [e.score for e in evaluator.evaluate(programs)]
        assert got == expected
        assert evaluator.pool_crashes >= 1
        assert not evaluator.degraded
        crashes = sink.events("worker_crash")
        assert crashes and crashes[0]["max_pool_restarts"] == 3
        injected = sink.events("fault_injected")
        assert injected and injected[0]["kind"] == "worker_crash"

    def test_ga_run_with_crashes_matches_fault_free_run(self):
        config = GAConfig(
            population_size=12, generations=5, loop_length=20,
            seed=4, workers=2,
        )
        clean = GAEngine(PureFitness(), config).run(ARM_ISA)
        chaotic = GAEngine(
            PureFitness(),
            config,
            retry_policy=POLICY,
            fault_injector=_crashy_injector(),
        ).run(ARM_ISA)
        assert clean.evaluations == chaotic.evaluations
        for c, f in zip(clean.history, chaotic.history):
            assert c.best.score == f.best.score
            assert c.mean_score == f.mean_score
            assert c.best_program.genome() == f.best_program.genome()

    def test_persistent_crashes_degrade_to_serial(self):
        programs = _programs()
        fitness = PureFitness()
        expected = [fitness(p).score for p in programs]
        sink = MemorySink()
        with ParallelEvaluator(
            PureFitness(),
            workers=2,
            retry_policy=POLICY,
            fault_injector=_crashy_injector(times=50),
            event_log=EventLog([sink]),
            max_pool_restarts=2,
        ) as evaluator:
            got = [e.score for e in evaluator.evaluate(programs)]
        assert got == expected
        assert evaluator.degraded
        assert not evaluator.parallel
        (degraded,) = sink.events("degraded_to_serial")
        assert degraded["crashes"] > 2

    def test_worker_crash_without_policy_is_still_redispatched(self):
        # WorkerCrash handling does not require a RetryPolicy: crash
        # recovery is about the pool, not the retry budget.
        programs = _programs(count=4)
        fitness = PureFitness()
        expected = [fitness(p).score for p in programs]
        with ParallelEvaluator(
            PureFitness(),
            workers=2,
            fault_injector=_crashy_injector(),
        ) as evaluator:
            assert [
                e.score for e in evaluator.evaluate(programs)
            ] == expected


@pytest.mark.slow
class TestHardFailures:
    def test_dead_worker_processes_degrade_to_serial(self):
        programs = _programs(count=6)
        sink = MemorySink()
        with ParallelEvaluator(
            DyingWorkerFitness(),
            workers=2,
            retry_policy=POLICY,
            event_log=EventLog([sink]),
            max_pool_restarts=1,
        ) as evaluator:
            got = [e.score for e in evaluator.evaluate(programs)]
        assert got == [float(len(p.body)) for p in programs]
        assert evaluator.degraded
        assert sink.events("degraded_to_serial")

    def test_hung_workers_time_out_and_degrade(self):
        programs = _programs(count=4)
        policy = RetryPolicy(
            max_retries=2, base_delay_s=0.0, timeout_s=0.3
        )
        sink = MemorySink()
        with ParallelEvaluator(
            SlowWorkerFitness(),
            workers=2,
            retry_policy=policy,
            event_log=EventLog([sink]),
            max_pool_restarts=1,
        ) as evaluator:
            got = [e.score for e in evaluator.evaluate(programs)]
        assert got == [float(len(p.body)) for p in programs]
        assert evaluator.degraded
        crashes = sink.events("worker_crash")
        assert any("dispatch budget" in c["error"] for c in crashes)


class TestQuarantine:
    def test_poisoned_genome_gets_penalty_score(self):
        healthy = _programs(count=4)
        poisoned = _programs(count=1, seed=9, name="poison")
        programs = healthy[:2] + poisoned + healthy[2:]
        sink = MemorySink()
        evaluator = ParallelEvaluator(
            PoisonedFitness(),
            workers=1,
            retry_policy=POLICY,
            event_log=EventLog([sink]),
        )
        results = evaluator.evaluate(programs)
        scores = [e.score for e in results]
        assert scores[2] == PENALTY_SCORE
        assert all(s > 0 for s in scores[:2] + scores[3:])
        assert poisoned[0].genome() in evaluator.quarantined
        (event,) = sink.events("genome_quarantined")
        assert event["program"] == "poison0"
        assert event["site"] == "chain.receive"
        assert event["penalty_score"] == PENALTY_SCORE

    def test_quarantine_spares_healthy_results(self):
        # The healthy programs score exactly what a fault-free
        # evaluator gives them, despite sharing a batch with poison.
        healthy = _programs(count=5)
        poisoned = _programs(count=1, seed=9, name="poison")
        clean = ParallelEvaluator(PoisonedFitness(), workers=1)
        expected = [e.score for e in clean.evaluate(healthy)]
        chaotic = ParallelEvaluator(
            PoisonedFitness(), workers=1, retry_policy=POLICY
        )
        got = [
            e.score
            for e in chaotic.evaluate(healthy[:3] + poisoned + healthy[3:])
        ]
        assert got[:3] + got[4:] == expected

    def test_ga_survives_poisoned_population(self):
        sink = MemorySink()
        config = GAConfig(
            population_size=8, generations=3, loop_length=10, seed=1
        )
        result = GAEngine(
            PoisonedRandomNameFitness(),
            config,
            retry_policy=POLICY,
        ).run(ARM_ISA, event_log=EventLog([sink]))
        assert len(result.history) == 3
        assert sink.events("genome_quarantined")
        gen_ends = sink.events("generation_end")
        assert any(g.get("quarantined") for g in gen_ends)

    def test_penalty_evaluation_shape(self):
        ev = penalty_evaluation()
        assert ev.score == PENALTY_SCORE
        assert float(ev) == PENALTY_SCORE


class PoisonedRandomNameFitness:
    """Faults on the seed population's ``ind3`` individual."""

    def __call__(self, program):
        if program.name == "ind3":
            raise TransientFault("bad genome", site="chain.receive")
        return _evaluation(float(len(program.body)))


class TestCrashExceptionTransport:
    def test_worker_crash_survives_pickling(self):
        import pickle

        crash = WorkerCrash("died mid-shard", site="worker.shard")
        clone = pickle.loads(pickle.dumps(crash))
        assert isinstance(clone, WorkerCrash)
        assert clone.site == "worker.shard"
        assert str(clone) == "died mid-shard"
