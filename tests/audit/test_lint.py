"""Static lint layer: every rule fires, suppresses and fixes cleanly.

Each rule gets the same trio: a positive snippet that must be flagged,
the same snippet with an inline suppression (counted but not failing),
and the documented fix-it applied (no finding at all).
"""

from pathlib import Path

import pytest

from repro.audit.__main__ import main as audit_main
from repro.audit.lint import Finding, lint_paths, lint_source
from repro.audit.rules import RULE_IDS, RULES, render_rule_table

SRC = Path(__file__).resolve().parents[2] / "src"


def rules_of(findings, suppressed=None):
    return [
        f.rule
        for f in findings
        if suppressed is None or f.suppressed is suppressed
    ]


# ---------------------------------------------------------------------------
# R1: unseeded RNG
# ---------------------------------------------------------------------------
class TestR1UnseededRng:
    def test_module_level_draw_flagged(self):
        findings = lint_source("import numpy as np\nx = np.random.normal(0, 1)\n")
        assert rules_of(findings) == ["R1"]
        assert findings[0].line == 2

    def test_unseeded_default_rng_flagged(self):
        findings = lint_source("rng = np.random.default_rng()\n")
        assert rules_of(findings) == ["R1"]

    def test_fixit_seeded_generator_clean(self):
        assert lint_source("rng = np.random.default_rng(1234)\n") == []
        assert lint_source("rng = np.random.default_rng(seed=7)\n") == []
        assert lint_source("x = rng.normal(0, 1)\n") == []

    def test_suppressed(self):
        findings = lint_source(
            "x = np.random.normal(0, 1)  # audit: ignore[R1]\n"
        )
        assert rules_of(findings, suppressed=True) == ["R1"]
        assert rules_of(findings, suppressed=False) == []


# ---------------------------------------------------------------------------
# R2: wall-clock reads
# ---------------------------------------------------------------------------
class TestR2WallClock:
    def test_time_time_flagged(self):
        findings = lint_source("import time\nt = time.time()\n")
        assert rules_of(findings) == ["R2"]

    def test_datetime_now_flagged(self):
        findings = lint_source("now = datetime.now()\n")
        assert rules_of(findings) == ["R2"]

    def test_obs_layer_exempt(self):
        findings = lint_source(
            "t = time.time()\n", path="src/repro/obs/events.py"
        )
        assert findings == []

    def test_fixit_monotonic_clean(self):
        assert lint_source("t = time.monotonic()\n") == []
        assert lint_source("t = time.perf_counter()\n") == []

    def test_suppressed(self):
        findings = lint_source("t = time.time()  # audit: ignore[R2]\n")
        assert rules_of(findings, suppressed=True) == ["R2"]


# ---------------------------------------------------------------------------
# R3: id() cache keys
# ---------------------------------------------------------------------------
class TestR3IdCacheKey:
    def test_id_call_flagged(self):
        findings = lint_source("key = (id(cluster), genome)\n")
        assert rules_of(findings) == ["R3"]

    def test_fixit_uid_clean(self):
        assert lint_source("key = (cluster.uid, genome)\n") == []

    def test_suppressed(self):
        findings = lint_source("key = id(obj)  # audit: ignore[R3]\n")
        assert rules_of(findings, suppressed=True) == ["R3"]


# ---------------------------------------------------------------------------
# R4: mutable default arguments
# ---------------------------------------------------------------------------
class TestR4MutableDefault:
    def test_list_literal_flagged(self):
        findings = lint_source("def f(items=[]):\n    return items\n")
        assert rules_of(findings) == ["R4"]

    def test_constructor_call_flagged(self):
        findings = lint_source("def f(seen=set()):\n    return seen\n")
        assert rules_of(findings) == ["R4"]

    def test_kwonly_default_flagged(self):
        findings = lint_source("def f(*, cache={}):\n    return cache\n")
        assert rules_of(findings) == ["R4"]

    def test_fixit_none_default_clean(self):
        source = (
            "def f(items=None):\n"
            "    items = [] if items is None else items\n"
            "    return items\n"
        )
        assert lint_source(source) == []

    def test_suppressed(self):
        findings = lint_source(
            "def f(items=[]):  # audit: ignore[R4]\n    return items\n"
        )
        assert rules_of(findings, suppressed=True) == ["R4"]


# ---------------------------------------------------------------------------
# R5: state_version bumps
# ---------------------------------------------------------------------------
_R5_TEMPLATE = """\
class Cluster:
    def __init__(self):
        self._clock = 1.0
        self._state_version = 0

    def state(self):
        return (self._clock,)

    def set_clock(self, hz):
        self._clock = hz
{bump}
"""


class TestR5StateVersion:
    def test_missing_bump_flagged(self):
        findings = lint_source(_R5_TEMPLATE.format(bump=""))
        assert rules_of(findings) == ["R5"]
        assert "set_clock" in findings[0].message

    def test_fixit_bump_clean(self):
        source = _R5_TEMPLATE.format(bump="        self._state_version += 1\n")
        assert lint_source(source) == []

    def test_class_without_version_counter_ignored(self):
        source = (
            "class Plain:\n"
            "    def state(self):\n"
            "        return self._x\n"
            "    def set_x(self, v):\n"
            "        self._x = v\n"
        )
        assert lint_source(source) == []

    def test_nested_attribute_reads_are_not_state_fields(self):
        # state() reading self._pdn.solver makes _pdn a state field,
        # but "_pdn.solver" itself must not become an (unmatchable)
        # field name that hides real violations or invents fake ones.
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._pdn = object()\n"
            "        self._state_version = 0\n"
            "    def state(self):\n"
            "        return self._pdn.solver\n"
            "    def set_other(self, v):\n"
            "        self._other = v\n"
        )
        assert lint_source(source) == []

    def test_suppressed(self):
        source = _R5_TEMPLATE.format(bump="").replace(
            "    def set_clock(self, hz):",
            "    def set_clock(self, hz):  # audit: ignore[R5]",
        )
        findings = lint_source(source)
        assert rules_of(findings, suppressed=True) == ["R5"]


# ---------------------------------------------------------------------------
# R6: over-broad except
# ---------------------------------------------------------------------------
class TestR6OverbroadExcept:
    def test_bare_except_flagged(self):
        findings = lint_source(
            "try:\n    risky()\nexcept:\n    pass\n"
        )
        assert rules_of(findings) == ["R6"]

    def test_base_exception_flagged(self):
        findings = lint_source(
            "try:\n    risky()\nexcept BaseException:\n    pass\n"
        )
        assert rules_of(findings) == ["R6"]

    def test_swallowing_exception_flagged(self):
        findings = lint_source(
            "try:\n    risky()\nexcept Exception:\n    fallback = None\n"
        )
        assert rules_of(findings) == ["R6"]

    def test_exception_with_reraise_clean(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    cleanup()\n"
            "    raise\n"
        )
        assert lint_source(source) == []

    def test_fixit_narrow_types_clean(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except (pickle.PicklingError, TypeError):\n"
            "    fallback = None\n"
        )
        assert lint_source(source) == []

    def test_suppressed(self):
        findings = lint_source(
            "try:\n    risky()\nexcept Exception:  # audit: ignore[R6]\n"
            "    pass\n"
        )
        assert rules_of(findings, suppressed=True) == ["R6"]


# ---------------------------------------------------------------------------
# suppression semantics
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_bare_ignore_suppresses_every_rule(self):
        findings = lint_source(
            "key = id(np.random.normal(0, 1))  # audit: ignore\n"
        )
        assert findings and all(f.suppressed for f in findings)

    def test_bracketed_ignore_is_rule_specific(self):
        findings = lint_source(
            "key = id(np.random.normal(0, 1))  # audit: ignore[R3]\n"
        )
        by_rule = {f.rule: f.suppressed for f in findings}
        assert by_rule == {"R1": False, "R3": True}


# ---------------------------------------------------------------------------
# CLI + file walking
# ---------------------------------------------------------------------------
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert audit_main(["lint", str(target)]) == 0
        captured = capsys.readouterr()
        assert "0 finding(s)" in captured.err

    def test_dirty_file_exits_nonzero_with_fixit(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("key = id(obj)\n", encoding="utf-8")
        assert audit_main(["lint", str(target)]) == 1
        captured = capsys.readouterr()
        assert "R3" in captured.out
        assert "fix-it:" in captured.out

    def test_suppressed_only_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "hushed.py"
        target.write_text(
            "key = id(obj)  # audit: ignore[R3]\n", encoding="utf-8"
        )
        assert audit_main(["lint", str(target)]) == 0
        captured = capsys.readouterr()
        assert "1 suppressed" in captured.err
        assert "R3" not in captured.out
        audit_main(["lint", "--show-suppressed", str(target)])
        captured = capsys.readouterr()
        assert "(suppressed)" in captured.out

    def test_rules_subcommand_renders_table(self, capsys):
        assert audit_main(["rules"]) == 0
        captured = capsys.readouterr()
        for rule_id in RULE_IDS:
            assert rule_id in captured.out
        assert render_rule_table() in captured.out

    def test_test_directories_are_skipped(self, tmp_path):
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_x.py").write_text(
            "key = id(obj)\n", encoding="utf-8"
        )
        (tmp_path / "conftest.py").write_text(
            "t = time.time()\n", encoding="utf-8"
        )
        assert lint_paths([tmp_path]) == []


def test_source_tree_is_lint_clean():
    """Acceptance pin: the shipped src/ tree has zero findings."""
    findings = [f for f in lint_paths([SRC]) if not f.suppressed]
    rendered = "\n".join(f.render(show_fixit=False) for f in findings)
    assert not findings, f"unsuppressed audit findings:\n{rendered}"


def test_every_rule_documents_a_fixit():
    for rule in RULES.values():
        assert rule.fixit
        assert rule.summary
