"""Retry with jittered exponential backoff, and state-safe wrappers.

:class:`RetryPolicy` is the single knob object the resilient execution
paths share: per-item/batch retry budget, exponential backoff with
deterministic seeded jitter, and an optional wall-clock budget for
worker dispatch.  :func:`call_with_retry` applies a policy around any
callable, with optional *state capture/restore* hooks so a retried
measurement replays the exact RNG stream the failed attempt consumed --
the mechanism behind the chaos suite's bit-identical-after-retry
guarantee (a fitness exposing ``fitness_state`` /
``restore_fitness_state`` gets its instrument RNGs rewound before
every retry and after final failure).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.faults.errors import RETRYABLE_FAULTS, FaultError
from repro.obs.events import NULL_LOG, EventLog


@dataclass(frozen=True)
class RetryPolicy:
    """Shared resilience knobs for batch evaluation and checkpoint IO.

    ``max_retries`` is the number of *re*-attempts after the first
    failure (0 disables retrying but keeps quarantine salvage).  The
    attempt-``k`` delay is ``base_delay_s * backoff**k`` capped at
    ``max_delay_s``, scaled down by up to ``jitter`` (a fraction in
    [0, 1]) drawn from a policy-seeded PRNG -- deterministic given the
    seed, so chaos runs are replayable.  ``timeout_s`` bounds each
    worker-shard wait in the parallel evaluator; a dispatch exceeding
    it is treated as a crashed worker.
    """

    max_retries: int = 2
    base_delay_s: float = 0.0
    backoff: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0.0:
            raise ValueError("base_delay_s must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_delay_s < 0.0:
            raise ValueError("max_delay_s must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        delay = min(
            self.base_delay_s * self.backoff ** attempt, self.max_delay_s
        )
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def jitter_rng(self) -> random.Random:
        """A fresh deterministic jitter stream for one retry scope."""
        return random.Random(self.seed)


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    *,
    event_log: EventLog = NULL_LOG,
    scope: str = "call",
    retry_on: Tuple[Type[BaseException], ...] = RETRYABLE_FAULTS,
    capture_state: Optional[Callable[[], Any]] = None,
    restore_state: Optional[Callable[[Any], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run ``fn`` under ``policy``, retrying faults in ``retry_on``.

    Emits ``fault_injected`` when a :class:`FaultError` is caught and
    ``retry_attempt`` before each retry.  When state hooks are given,
    the pre-attempt state is restored before every retry *and* before
    re-raising after the budget is exhausted, so the caller's RNG
    streams are exactly where they were had ``fn`` never run.
    """
    rng = policy.jitter_rng()
    state = capture_state() if capture_state is not None else None
    for attempt in range(policy.max_retries + 1):
        try:
            return fn()
        except retry_on as exc:
            site = getattr(exc, "site", None)
            kind = getattr(exc, "kind", type(exc).__name__)
            if isinstance(exc, FaultError):
                event_log.emit(
                    "fault_injected",
                    site=site,
                    kind=kind,
                    scope=scope,
                    error=str(exc),
                )
            if restore_state is not None and state is not None:
                restore_state(state)
            if attempt >= policy.max_retries:
                raise
            delay = policy.delay_s(attempt, rng)
            event_log.emit(
                "retry_attempt",
                scope=scope,
                attempt=attempt + 1,
                max_retries=policy.max_retries,
                site=site,
                kind=kind,
                delay_s=round(delay, 6),
            )
            if delay > 0.0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
