"""SCPI-style facade over the simulated instruments.

The paper's workstation drives the spectrum analyzer over an instrument
bus (the pyvisa pattern).  This module offers the same ergonomics so
that orchestration code is written exactly as it would be against real
hardware: open a resource manager, look up an instrument by address,
``write``/``query`` SCPI strings.  Swapping in real pyvisa resources
requires no changes to callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.em.radiation import EmissionSpectrum
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


class ScpiError(Exception):
    """Unknown or malformed SCPI command."""


@dataclass
class ScpiInstrument:
    """A spectrum analyzer exposed through a minimal SCPI dialect.

    Supported commands (case-insensitive):

    - ``*IDN?`` -- identification string.
    - ``FREQ:STAR <hz>`` / ``FREQ:STAR?`` -- sweep start.
    - ``FREQ:STOP <hz>`` / ``FREQ:STOP?`` -- sweep stop.
    - ``BAND:RES <hz>`` / ``BAND:RES?`` -- resolution bandwidth.
    - ``INIT; TRAC?`` -- perform a sweep, return comma-separated dBm.
    - ``CALC:MARK:MAX; CALC:MARK:X?; CALC:MARK:Y?`` -- peak marker.

    The emission under measurement is supplied by the test harness via
    :meth:`present_emission` (in hardware, the device under test simply
    radiates; here the harness wires the simulated DUT in).
    """

    identity: str = "Simulated,EM-SA,0001,1.0"
    analyzer: SpectrumAnalyzer = field(default_factory=SpectrumAnalyzer)

    def __post_init__(self) -> None:
        self._emission: Optional[EmissionSpectrum] = None
        self._last_trace = None
        self._marker: Optional[tuple] = None

    def present_emission(self, emission: EmissionSpectrum) -> None:
        """Point the antenna at a (simulated) radiating device."""
        self._emission = emission

    # ------------------------------------------------------------------
    def write(self, command: str) -> None:
        for part in command.split(";"):
            self._execute(part.strip())

    def query(self, command: str) -> str:
        parts = [p.strip() for p in command.split(";")]
        reply = ""
        for part in parts:
            reply = self._execute(part)
        if reply is None:
            raise ScpiError(f"command {command!r} returns no data")
        return reply

    # ------------------------------------------------------------------
    def _execute(self, command: str) -> Optional[str]:
        if not command:
            return None
        upper = command.upper()
        a = self.analyzer
        if upper == "*IDN?":
            return self.identity
        if upper.startswith("FREQ:STAR"):
            return self._number_cmd(upper, "FREQ:STAR", "start_hz", command)
        if upper.startswith("FREQ:STOP"):
            return self._number_cmd(upper, "FREQ:STOP", "stop_hz", command)
        if upper.startswith("BAND:RES"):
            return self._number_cmd(upper, "BAND:RES", "rbw_hz", command)
        if upper == "INIT":
            if self._emission is None:
                raise ScpiError("no device under test presented")
            self._last_trace = a.sweep(self._emission)
            return None
        if upper == "TRAC?":
            self._require_trace()
            return ",".join(f"{x:.2f}" for x in self._last_trace.power_dbm)
        if upper == "CALC:MARK:MAX":
            self._require_trace()
            self._marker = self._last_trace.peak()
            return None
        if upper == "CALC:MARK:X?":
            self._require_marker()
            return f"{self._marker[0]:.1f}"
        if upper == "CALC:MARK:Y?":
            self._require_marker()
            return f"{self._marker[1]:.2f}"
        raise ScpiError(f"unknown command {command!r}")

    def _number_cmd(
        self, upper: str, prefix: str, attr: str, raw: str
    ) -> Optional[str]:
        rest = upper[len(prefix):].strip()
        if rest == "?":
            return f"{getattr(self.analyzer, attr):.1f}"
        try:
            value = float(raw[len(prefix):].strip())
        except ValueError:
            raise ScpiError(f"bad numeric argument in {raw!r}") from None
        setattr(self.analyzer, attr, value)
        return None

    def _require_trace(self) -> None:
        if self._last_trace is None:
            raise ScpiError("no sweep taken; send INIT first")

    def _require_marker(self) -> None:
        if self._marker is None:
            raise ScpiError("no marker set; send CALC:MARK:MAX first")


class SimulatedResourceManager:
    """pyvisa-like resource manager over simulated instruments."""

    def __init__(self) -> None:
        self._resources: Dict[str, ScpiInstrument] = {}

    def register(self, address: str, instrument: ScpiInstrument) -> None:
        self._resources[address] = instrument

    def list_resources(self) -> tuple:
        return tuple(sorted(self._resources))

    def open_resource(self, address: str) -> ScpiInstrument:
        try:
            return self._resources[address]
        except KeyError:
            raise ScpiError(f"no instrument at {address!r}") from None
