"""Property-based round-trip tests for serialization layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.arm import ARM_ISA
from repro.cpu.x86 import X86_ISA
from repro.cpu.program import random_program
from repro.faults import CorruptArtifact
from repro.ga.instruction_spec import (
    parse_instruction_pool,
    render_instruction_pool,
)
from repro.io.serialization import (
    load_checkpoint,
    program_from_dict,
    program_to_dict,
    save_checkpoint,
)

seeds = st.integers(min_value=0, max_value=100_000)
lengths = st.integers(min_value=1, max_value=80)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, length=lengths, arm=st.booleans())
def test_program_json_round_trip(seed, length, arm):
    """Every generatable program survives the JSON round trip exactly."""
    isa = ARM_ISA if arm else X86_ISA
    program = random_program(isa, length, np.random.default_rng(seed))
    loaded = program_from_dict(program_to_dict(program))
    assert loaded.genome() == program.genome()
    assert loaded.assembly() == program.assembly()
    assert loaded.isa.registers == program.isa.registers
    assert loaded.isa.memory_slots == program.isa.memory_slots


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    n_instr=st.integers(min_value=1, max_value=len(ARM_ISA.specs)),
    int_regs=st.integers(min_value=1, max_value=31),
    slots=st.integers(min_value=1, max_value=512),
)
def test_instruction_pool_xml_round_trip(seed, n_instr, int_regs, slots):
    """Arbitrary instruction pools survive the XML round trip."""
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        [s.mnemonic for s in ARM_ISA.specs], size=n_instr, replace=False
    )
    instr_lines = "".join(
        f'<instruction mnemonic="{m}"/>' for m in chosen
    )
    xml = (
        f'<instruction-pool isa="armv8">'
        f'<registers int="{int_regs}"/>'
        f'<memory slots="{slots}"/>'
        f"{instr_lines}</instruction-pool>"
    )
    isa = parse_instruction_pool(xml)
    isa2 = parse_instruction_pool(render_instruction_pool(isa, "armv8"))
    assert [s.mnemonic for s in isa2.specs] == list(chosen)
    assert isa2.registers == isa.registers
    assert isa2.memory_slots == slots


@settings(max_examples=30, deadline=None)
@given(seed=seeds, length=st.integers(min_value=1, max_value=50))
def test_serialized_program_is_json_stable(seed, length):
    """Serializing twice yields identical dictionaries (no hidden state)."""
    program = random_program(
        ARM_ISA, length, np.random.default_rng(seed)
    )
    assert program_to_dict(program) == program_to_dict(program)


# ---------------------------------------------------------------------------
# Checksummed checkpoint format (repro.io.serialization save/load).
# ---------------------------------------------------------------------------
def _checkpoint(seed, pop=4, length=6):
    from repro.ga.engine import GACheckpoint, GAConfig

    rng = np.random.default_rng(seed)
    population = [
        random_program(ARM_ISA, length, rng, name=f"p{i}")
        for i in range(pop)
    ]
    return GACheckpoint(
        config=GAConfig(
            population_size=pop, generations=3, loop_length=length,
            seed=seed,
        ),
        generation=1,
        population=population,
        rng_state=rng.bit_generator.state,
        cache={},
        history=[],
        evaluations=pop,
    )


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_checksummed_checkpoint_round_trip(seed, tmp_path_factory):
    """Arbitrary checkpoints survive the checksummed format exactly."""
    path = tmp_path_factory.mktemp("ckpt") / "c.json"
    checkpoint = _checkpoint(seed)
    save_checkpoint(checkpoint, path)
    loaded = load_checkpoint(path)
    assert loaded.config == checkpoint.config
    assert loaded.generation == checkpoint.generation
    assert [p.genome() for p in loaded.population] == [
        p.genome() for p in checkpoint.population
    ]
    assert loaded.rng_state == checkpoint.rng_state


@settings(max_examples=20, deadline=None)
@given(seed=seeds, cut=st.floats(min_value=0.05, max_value=0.95))
def test_any_truncation_is_detected(seed, cut, tmp_path_factory):
    """A checkpoint cut anywhere never loads as valid data."""
    path = tmp_path_factory.mktemp("ckpt") / "c.json"
    save_checkpoint(_checkpoint(seed), path)
    raw = path.read_bytes()
    path.write_bytes(raw[: max(1, int(len(raw) * cut))])
    with pytest.raises(CorruptArtifact):
        load_checkpoint(path)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, offset_frac=st.floats(min_value=0.0, max_value=0.999))
def test_any_flipped_payload_byte_is_detected(
    seed, offset_frac, tmp_path_factory
):
    """Flipping any single payload byte fails checksum verification."""
    path = tmp_path_factory.mktemp("ckpt") / "c.json"
    save_checkpoint(_checkpoint(seed), path)
    raw = bytearray(path.read_bytes())
    payload_len = raw.index(b"\n")
    offset = min(int(payload_len * offset_frac), payload_len - 1)
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(CorruptArtifact, match="checksum|truncated"):
        load_checkpoint(path)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_legacy_unchecksummed_checkpoint_loads_with_warning(
    seed, tmp_path_factory
):
    import json

    from repro.io.serialization import checkpoint_to_dict

    path = tmp_path_factory.mktemp("ckpt") / "legacy.json"
    checkpoint = _checkpoint(seed)
    path.write_text(
        json.dumps(checkpoint_to_dict(checkpoint)), encoding="utf-8"
    )
    with pytest.warns(UserWarning, match="no checksum footer"):
        loaded = load_checkpoint(path)
    assert loaded.generation == checkpoint.generation
