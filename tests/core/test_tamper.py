"""Unit tests for resonance-signature tamper detection."""

import dataclasses

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer
from repro.core.resonance import ResonanceSweep
from repro.core.tamper import ResonanceSignature, TamperDetector
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.pdn.models import scaled
from repro.platforms.base import Cluster
from repro.platforms.juno import A72_SPEC, A72_UNITS

CLOCKS = [1.2e9 - k * 40e6 for k in range(0, 27)]


def fresh_a72(pdn_params=None):
    spec = A72_SPEC
    if pdn_params is not None:
        spec = dataclasses.replace(spec, pdn_params=pdn_params)
    return Cluster(
        spec,
        OutOfOrderPipeline(
            width=3, window=48, rob_size=128, unit_counts=A72_UNITS
        ),
    )


def make_detector(seed=9, tolerance=0.06):
    sweep = ResonanceSweep(
        EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
            samples=4,
        ),
        samples_per_point=3,
    )
    return TamperDetector(sweep, tolerance=tolerance)


class TestEnrollment:
    def test_signature_covers_gating_states(self):
        detector = make_detector()
        signature = detector.enroll(fresh_a72(), clocks_hz=CLOCKS)
        assert signature.cluster_name == "cortex-a72"
        assert set(signature.states()) == {1, 2}
        assert 60e6 < signature.resonances_hz[2] < 75e6
        assert 78e6 < signature.resonances_hz[1] < 92e6

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            TamperDetector(make_detector().sweep, tolerance=0.0)


class TestScreening:
    def test_pristine_unit_passes(self):
        detector = make_detector()
        golden = detector.enroll(fresh_a72(), clocks_hz=CLOCKS)
        verdict = detector.check(fresh_a72(), golden, clocks_hz=CLOCKS)
        assert not verdict.tampered
        assert verdict.worst_drift_fraction < detector.tolerance

    def test_added_capacitance_detected(self):
        """A tampered board (e.g. an implant adding bulk on the rail,
        modeled as +60 % die capacitance) shifts the resonance down."""
        detector = make_detector()
        golden = detector.enroll(fresh_a72(), clocks_hz=CLOCKS)
        tampered_pdn = scaled(
            A72_SPEC.pdn_params,
            c_die_base=A72_SPEC.pdn_params.c_die_base * 1.6,
            c_die_per_core=A72_SPEC.pdn_params.c_die_per_core * 1.6,
        )
        verdict = detector.check(
            fresh_a72(tampered_pdn), golden, clocks_hz=CLOCKS
        )
        assert verdict.tampered
        assert verdict.worst_drift_fraction > 0.1

    def test_changed_package_inductance_detected(self):
        """An interposer in the power path raises L_pkg."""
        detector = make_detector()
        golden = detector.enroll(fresh_a72(), clocks_hz=CLOCKS)
        tampered_pdn = scaled(
            A72_SPEC.pdn_params,
            l_pkg=A72_SPEC.pdn_params.l_pkg * 2.0,
        )
        verdict = detector.check(
            fresh_a72(tampered_pdn), golden, clocks_hz=CLOCKS
        )
        assert verdict.tampered

    def test_wrong_cluster_rejected(self, a53):
        detector = make_detector()
        golden = ResonanceSignature("cortex-a72", {2: 67e6})
        with pytest.raises(ValueError, match="signature is for"):
            detector.check(a53, golden)
