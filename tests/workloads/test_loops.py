"""Unit tests for the Section 5.3 high/low sweep loop."""

import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.x86 import X86_ISA
from repro.cpu.isa import InstructionSet
from repro.workloads.loops import high_low_loop, high_low_program


class TestHighLowLoop:
    def test_arm_loop_composition(self):
        program = high_low_program(ARM_ISA)
        mnemonics = [i.mnemonic for i in program.body]
        assert mnemonics.count("add") == 8
        assert mnemonics.count("sdiv") == 1

    def test_x86_loop_composition(self):
        program = high_low_program(X86_ISA)
        mnemonics = [i.mnemonic for i in program.body]
        assert mnemonics.count("add_rr") == 8
        assert mnemonics.count("idiv_rr") == 1

    def test_unknown_isa_rejected(self):
        fake = InstructionSet(name="mips", specs=(ARM_ISA.spec("add"),))
        with pytest.raises(ValueError):
            high_low_loop(fake)

    def test_paper_loop_timing_on_a72(self, a72):
        """8 adds execute in 4 cycles, the div shades the rest; the
        loop spans 8 cycles = 150 MHz at 1.2 GHz (Section 5.3)."""
        run = a72.run(high_low_program(a72.spec.isa))
        assert run.execution.loop_cycles == 8
        assert run.loop_frequency_hz == pytest.approx(150e6)

    def test_loop_has_visible_em_spike(self, a72, characterizer):
        """The loop's purpose: a visible EM spike at the loop frequency."""
        m = characterizer.measure(a72, high_low_program(a72.spec.isa))
        from repro.instruments.spectrum_analyzer import watts_to_dbm
        import numpy as np

        floor = characterizer.analyzer.environment.noise_floor_dbm
        assert float(watts_to_dbm(np.array(m.amplitude_w))) > floor + 10
