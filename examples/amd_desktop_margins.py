#!/usr/bin/env python3
"""Cross-ISA margin study on the AMD desktop (Section 7, Fig. 18).

Shows why vendor stability tests under-estimate worst-case noise:

1. Find the Athlon's PDN resonance with the fast EM sweep (Fig. 16).
2. Generate an EM-driven dI/dt virus and a Kelvin-pad voltage-feedback
   virus (the ``amdEm`` / ``amdOsc`` pair of Table 2).
3. Run V_MIN tests against desktop workloads, Prime95 and the vendor
   stability test: the GA viruses crash at voltages where the power
   viruses run forever.

Run:  python examples/amd_desktop_margins.py
"""

import numpy as np

from repro import EMCharacterizer, ResonanceSweep, VirusGenerator
from repro import make_amd_desktop
from repro.ga import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs import RunContext
from repro.stability import VminTester, failure_model_for
from repro.workloads import (
    amd_stability_test,
    desktop_suite,
    idle_workload,
    prime95_like,
)
from repro.workloads.base import ProgramWorkload

GA = GAConfig(population_size=30, generations=30, loop_length=50, seed=3)


def main() -> None:
    desktop = make_amd_desktop()
    cpu = desktop.cpu
    characterizer = EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(17)),
        samples=10,
    )

    # ------------------------------------------------------------------
    print("== Fast EM sweep on the Athlon II X4 645 (Fig. 16) ==")
    sweep = ResonanceSweep(characterizer, samples_per_point=5)
    clocks = [3.1e9 - k * 100e6 for k in range(0, 24)]
    result = sweep.run(RunContext(cluster=cpu), clocks_hz=clocks)
    print(
        f"  resonance: {result.resonance_hz() / 1e6:.1f} MHz "
        f"(paper: 78 MHz)"
    )

    # ------------------------------------------------------------------
    print("\n== GA viruses: EM-driven vs Kelvin-pad feedback (Fig. 17) ==")
    em_summary = VirusGenerator(
        cpu, characterizer, config=GA
    ).generate_em_virus()
    osc_summary = VirusGenerator(
        cpu, characterizer, config=GA
    ).generate_oscilloscope_virus(desktop.probe)
    for label, s in (("amdEm", em_summary), ("amdOsc", osc_summary)):
        print(
            f"  {label}: dominant {s.dominant_frequency_hz / 1e6:5.1f} MHz,"
            f" loop {s.loop_frequency_hz / 1e6:5.1f} MHz, "
            f"IPC {s.ipc:.2f}, p2p noise {s.peak_to_peak_v * 1e3:.1f} mV"
        )
    print(
        "  (Section 8.2: at 3.1 GHz the needed IPC is low enough that "
        "loop and dominant frequencies coincide)"
    )

    # ------------------------------------------------------------------
    print("\n== V_MIN study, 12.5 mV steps (Fig. 18) ==")
    tester = VminTester(
        cpu,
        failure_model_for("amd-athlon-ii-x4-645"),
        step_v=0.0125,
        seed=23,
    )
    em_virus = ProgramWorkload(
        "amdEm", em_summary.virus, jitter_seed=None
    )
    osc_virus = ProgramWorkload(
        "amdOsc", osc_summary.virus, jitter_seed=None
    )
    workloads = (
        [idle_workload()]
        + desktop_suite(cpu.spec.isa)
        + [
            prime95_like(cpu.spec.isa),
            amd_stability_test(cpu.spec.isa),
            osc_virus,
            em_virus,
        ]
    )
    results = tester.compare(
        workloads,
        virus_repeats=10,
        benchmark_repeats=2,
        virus_names=("amdEm", "amdOsc"),
    )
    nominal = cpu.spec.nominal_voltage
    for name, res in sorted(results.items(), key=lambda kv: kv[1].vmin):
        print(
            f"  {name:14s} Vmin {res.vmin:.4f} V  "
            f"margin {1e3 * (nominal - res.vmin):6.1f} mV  "
            f"noise p2p {res.peak_to_peak_at_nominal * 1e3:6.1f} mV"
        )

    gap = results["amdEm"].vmin - results["prime95"].vmin
    print(
        f"\n  The EM virus fails {gap * 1e3:.0f} mV above Prime95: "
        "margins set with stability tests alone are optimistic."
    )


if __name__ == "__main__":
    main()
