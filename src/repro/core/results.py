"""Result containers for the characterization API.

Every result returned by a ``.run(ctx)`` entry point mixes in
:class:`JsonResultMixin`: one ``to_json()/from_json()`` pair, shared
across :class:`GARunSummary`, :class:`MeasurementResult` and
:class:`repro.core.resonance.SweepResult`, so run artifacts of every
experiment kind round-trip the same way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.program import LoopProgram
from repro.ga.engine import GAResult
from repro.instruments.spectrum_analyzer import SpectrumTrace

RESULT_SCHEMA_VERSION = 1


class JsonResultMixin:
    """Common JSON round-trip for experiment results.

    Subclasses implement ``to_dict``/``from_dict``; the mixin supplies
    ``to_json``/``from_json`` plus a ``kind`` tag checked on load so a
    sweep result cannot be silently parsed as a GA summary.
    """

    kind: str = "result"

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Dict[str, Any]):  # pragma: no cover
        raise NotImplementedError

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "result_version": RESULT_SCHEMA_VERSION,
            "kind": self.kind,
        }
        payload.update(self.to_dict())
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str):
        data = json.loads(text)
        kind = data.pop("kind", None)
        if kind is not None and kind != cls.kind:
            raise ValueError(
                f"expected result kind {cls.kind!r}, got {kind!r}"
            )
        version = data.pop("result_version", RESULT_SCHEMA_VERSION)
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result version {version!r}"
            )
        return cls.from_dict(data)


@dataclass
class GARunSummary(JsonResultMixin):
    """A finished GA virus-generation run plus its headline numbers."""

    cluster_name: str
    metric: str
    ga_result: GAResult
    virus: LoopProgram
    dominant_frequency_hz: float
    max_droop_v: float
    peak_to_peak_v: float
    ipc: float
    loop_frequency_hz: float
    loop_period_s: float

    kind = "ga-run-summary"

    @property
    def generations(self) -> int:
        return len(self.ga_result.history)

    def to_dict(self) -> Dict[str, Any]:
        from repro.io.serialization import (
            ga_result_to_dict,
            program_to_dict,
        )

        return {
            "cluster_name": self.cluster_name,
            "metric": self.metric,
            "dominant_frequency_hz": self.dominant_frequency_hz,
            "max_droop_v": self.max_droop_v,
            "peak_to_peak_v": self.peak_to_peak_v,
            "ipc": self.ipc,
            "loop_frequency_hz": self.loop_frequency_hz,
            "loop_period_s": self.loop_period_s,
            "virus": program_to_dict(self.virus),
            "ga_result": ga_result_to_dict(self.ga_result),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GARunSummary":
        from repro.io.serialization import (
            ga_result_from_dict,
            program_from_dict,
        )

        return cls(
            cluster_name=data["cluster_name"],
            metric=data["metric"],
            ga_result=ga_result_from_dict(data["ga_result"]),
            virus=program_from_dict(data["virus"]),
            dominant_frequency_hz=float(data["dominant_frequency_hz"]),
            max_droop_v=float(data["max_droop_v"]),
            peak_to_peak_v=float(data["peak_to_peak_v"]),
            ipc=float(data["ipc"]),
            loop_frequency_hz=float(data["loop_frequency_hz"]),
            loop_period_s=float(data["loop_period_s"]),
        )

    def convergence_table(self) -> List[Tuple[int, float, float, float]]:
        """(generation, score, droop, dominant MHz) rows -- Fig. 7 data."""
        return [
            (
                r.generation,
                r.best.score,
                r.best.max_droop_v,
                r.best.dominant_frequency_hz / 1e6,
            )
            for r in self.ga_result.history
        ]


@dataclass
class MeasurementResult(JsonResultMixin):
    """One banded EM measurement of a program running on a cluster.

    Returned by :meth:`repro.core.characterizer.EMCharacterizer.run`;
    carries the headline numbers plus the full analyzer trace so the
    spectrum figure can be re-rendered from the archived JSON.
    """

    cluster_name: str
    program_name: str
    amplitude_w: float
    peak_frequency_hz: float
    loop_frequency_hz: float
    band_hz: Tuple[float, float]
    frequencies_hz: np.ndarray
    power_dbm: np.ndarray

    kind = "em-measurement"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cluster_name": self.cluster_name,
            "program_name": self.program_name,
            "amplitude_w": self.amplitude_w,
            "peak_frequency_hz": self.peak_frequency_hz,
            "loop_frequency_hz": self.loop_frequency_hz,
            "band_hz": list(self.band_hz),
            "frequencies_hz": np.asarray(self.frequencies_hz).tolist(),
            "power_dbm": np.asarray(self.power_dbm).tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MeasurementResult":
        return cls(
            cluster_name=data["cluster_name"],
            program_name=data.get("program_name", ""),
            amplitude_w=float(data["amplitude_w"]),
            peak_frequency_hz=float(data["peak_frequency_hz"]),
            loop_frequency_hz=float(data["loop_frequency_hz"]),
            band_hz=tuple(data["band_hz"]),
            frequencies_hz=np.asarray(data["frequencies_hz"], dtype=float),
            power_dbm=np.asarray(data["power_dbm"], dtype=float),
        )


@dataclass
class MultiDomainSpectrum:
    """One spectrum-analyzer sweep covering several voltage domains.

    ``domain_peaks`` maps cluster name -> (frequency, dBm) of that
    domain's signature spike in the combined trace (Fig. 15).
    """

    trace: SpectrumTrace
    domain_peaks: Dict[str, Tuple[float, float]] = field(
        default_factory=dict
    )

    def visible_domains(self, floor_margin_db: float = 6.0) -> List[str]:
        """Domains whose signature rises clearly above the noise floor."""
        floor = float(np.median(self.trace.power_dbm))
        return [
            name
            for name, (_, dbm) in self.domain_peaks.items()
            if dbm > floor + floor_margin_db
        ]
