"""Cluster abstraction: cores + voltage domain + PDN + visibility.

A :class:`Cluster` is the unit the methodology targets: a set of
identical cores sharing one voltage rail (the A72 pair, the A53 quad,
the Athlon quad).  It owns the mutable platform state the paper's
experiments manipulate -- clock frequency, supply voltage, how many
cores are powered -- and executes loop programs into steady-state rail
responses through the PDN model.

Dynamic current scales with both clock frequency (charge per cycle is
fixed, so amperes scale with cycles per second) and supply voltage
(switching current is proportional to V), which is what makes the
fast resonance sweep of Section 5.3 work: lowering the clock modulates
the loop frequency *and* shrinks the current amplitude, yet the
resonance peak dominates.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.current import CurrentModel
from repro.cpu.isa import InstructionSet
from repro.cpu.multicore import ClusterExecution, CoreModel, execute_on_cluster
from repro.cpu.pipeline import Pipeline
from repro.cpu.program import LoopProgram
from repro.pdn.models import PDNModel, PDNParameters
from repro.pdn.steady_state import PeriodicResponse


class ClusterState(NamedTuple):
    """One cluster operating point: the mutable platform state that
    affects the measurement chain.  Used as a cache key by
    :class:`repro.chain.SimulationSession`."""

    clock_hz: float
    voltage: float
    powered_cores: int


class NoiseVisibility(enum.Enum):
    """What direct voltage-noise measurement the platform supports."""

    NONE = "none"
    OC_DSO = "oc-dso"
    KELVIN_PADS = "on-package pads"


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a CPU cluster (one row of Table 1)."""

    name: str
    isa: InstructionSet
    num_cores: int
    microarchitecture: str
    nominal_voltage: float
    nominal_clock_hz: float
    clock_step_hz: float
    min_clock_hz: float
    technology_nm: int
    visibility: NoiseVisibility
    has_scl: bool
    pdn_params: PDNParameters
    current_model: CurrentModel
    uncore_current_a: float = 0.1

    def allowed_clocks_hz(self) -> Tuple[float, ...]:
        """Clock points the platform multiplier can reach, high to low."""
        clocks = []
        f = self.nominal_clock_hz
        while f >= self.min_clock_hz - 1.0:
            clocks.append(f)
            f -= self.clock_step_hz
        return tuple(clocks)


class Cluster:
    """Stateful cluster: the device under test.

    The constructor takes the static spec plus a pipeline factory so
    that in-order and out-of-order models plug in uniformly.
    """

    #: Process-wide monotonic source for :attr:`uid` tokens.
    _uid_counter = itertools.count()

    def __init__(self, spec: ClusterSpec, pipeline: Pipeline):
        self.spec = spec
        self._pipeline = pipeline
        self._pdn = PDNModel(spec.pdn_params)
        self._clock_hz = spec.nominal_clock_hz
        self._voltage = spec.nominal_voltage
        self._powered_cores = spec.num_cores
        self._state_version = 0
        # Stable identity token for cache keys.  Unlike id(self), a uid
        # is never reused after this cluster is garbage collected, so a
        # session outliving the cluster cannot alias a newer object's
        # entries onto the dead one's (audit rule R3).
        self.uid = next(Cluster._uid_counter)

    # ------------------------------------------------------------------
    # platform controls (SCP / Overdrive equivalents)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def clock_hz(self) -> float:
        return self._clock_hz

    @property
    def voltage(self) -> float:
        return self._voltage

    @property
    def powered_cores(self) -> int:
        return self._powered_cores

    @property
    def pdn(self) -> PDNModel:
        return self._pdn

    @property
    def pipeline(self) -> Pipeline:
        """The core pipeline model (shared by every core in the cluster)."""
        return self._pipeline

    @property
    def state_version(self) -> int:
        """Monotonic counter bumped by every platform-state mutation.

        Session-scoped caches (see :class:`repro.chain.SimulationSession`)
        compare this against their last-seen value to detect operating
        point changes without re-reading every field.
        """
        return self._state_version

    def state(self) -> ClusterState:
        """The present operating point as a hashable cache key."""
        return ClusterState(
            clock_hz=self._clock_hz,
            voltage=self._voltage,
            powered_cores=self._powered_cores,
        )

    def validate_clock(self, clock_hz: float) -> None:
        """Raise unless ``clock_hz`` is a multiplier-reachable point."""
        allowed = self.spec.allowed_clocks_hz()
        if not any(abs(clock_hz - f) < 1.0 for f in allowed):
            raise ValueError(
                f"{self.name}: clock {clock_hz / 1e6:.0f} MHz not reachable; "
                f"step is {self.spec.clock_step_hz / 1e6:.0f} MHz"
            )

    def validate_voltage(self, volts: float) -> None:
        if not 0.4 <= volts <= 1.6:
            raise ValueError(f"{self.name}: voltage {volts} V out of range")

    def validate_powered_cores(self, powered_cores: int) -> None:
        if not 1 <= powered_cores <= self.spec.num_cores:
            raise ValueError(
                f"{self.name}: powered cores must be 1..{self.spec.num_cores}"
            )

    def set_clock(self, clock_hz: float) -> None:
        """Set core clock; must be a multiplier-reachable point."""
        self.validate_clock(clock_hz)
        self._clock_hz = clock_hz
        self._state_version += 1

    def set_voltage(self, volts: float) -> None:
        self.validate_voltage(volts)
        self._voltage = volts
        self._state_version += 1

    def power_gate(self, powered_cores: int) -> None:
        """Leave ``powered_cores`` cores powered; gate the rest off."""
        self.validate_powered_cores(powered_cores)
        self._powered_cores = powered_cores
        self._state_version += 1

    def reset(self) -> None:
        """Back to nominal V/F with all cores powered."""
        self._clock_hz = self.spec.nominal_clock_hz
        self._voltage = self.spec.nominal_voltage
        self._powered_cores = self.spec.num_cores
        self._state_version += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def current_scale(
        self,
        clock_hz: Optional[float] = None,
        voltage: Optional[float] = None,
    ) -> float:
        """Dynamic-current scaling for an operating point.

        Defaults to the present platform state; the chain layer passes
        explicit per-item values so a batched sweep never mutates the
        cluster.
        """
        clock = clock_hz if clock_hz is not None else self._clock_hz
        volts = voltage if voltage is not None else self._voltage
        return (clock / self.spec.nominal_clock_hz) * (
            volts / self.spec.nominal_voltage
        )

    def _current_scale(self) -> float:
        return self.current_scale()

    def run(
        self,
        program: LoopProgram,
        active_cores: Optional[int] = None,
        phase_offsets: Optional[Sequence[int]] = None,
        iterations: int = 16,
        timing_jitter_rng: Optional[np.random.Generator] = None,
        jitter_tiles: int = 16,
        jitter_smooth_cycles: int = 12,
        activity_compression: float = 1.0,
    ) -> "ClusterRun":
        """Execute ``program`` on the cluster and solve the rail response.

        ``timing_jitter_rng`` models data-dependent timing variation of
        real (non-virus) workloads: the per-iteration current trace is
        tiled ``jitter_tiles`` times with random phase shifts, which
        destroys the coherent harmonic build-up a perfectly periodic
        loop would enjoy at the PDN resonance.  dI/dt viruses are
        deliberately deterministic (Section 3.3) and must pass ``None``.
        """
        active = active_cores if active_cores is not None else (
            self._powered_cores
        )
        if active > self._powered_cores:
            raise ValueError(
                f"{self.name}: {active} active cores exceed "
                f"{self._powered_cores} powered"
            )
        core = CoreModel(
            pipeline=self._pipeline,
            current_model=self.spec.current_model,
            clock_hz=self._clock_hz,
        )
        execution = execute_on_cluster(
            core,
            program,
            active_cores=active,
            phase_offsets=phase_offsets,
            uncore_current_a=self.spec.uncore_current_a,
            iterations=iterations,
        )
        scale = self._current_scale()
        trace = execution.load_current * scale
        if trace.size < 4:
            # Degenerate loops (period of 1-3 cycles) are still periodic;
            # tile them so the spectral solver has a valid grid.
            trace = np.tile(trace, int(np.ceil(4 / trace.size)))
        if timing_jitter_rng is not None:
            # Data-dependent issue jitter low-pass filters the current
            # spectrum of real workloads; deterministic virus loops
            # (timing_jitter_rng=None) keep their sharp edges.
            w = max(1, jitter_smooth_cycles)
            if w > 1 and trace.size > w:
                kernel = np.ones(w) / w
                trace = np.convolve(
                    np.concatenate([trace[-(w - 1):], trace]),
                    kernel,
                    mode="valid",
                )
            if activity_compression != 1.0:
                # Real programs mix hot and cold paths: their windowed
                # activity variance is a fraction of a worst-case
                # synthetic loop's.  Compress fluctuation around the
                # mean; the mean (IR drop) is untouched.
                mean = trace.mean()
                trace = mean + activity_compression * (trace - mean)
            n = trace.size
            trace = np.concatenate(
                [
                    np.roll(trace, int(timing_jitter_rng.integers(n)))
                    for _ in range(max(1, jitter_tiles))
                ]
            )
        response = self._pdn.solver(self._powered_cores).solve(
            trace, execution.sample_rate_hz
        )
        response = _recentered(response, self._voltage)
        return ClusterRun(
            cluster=self,
            program=program,
            execution=execution,
            response=response,
            clock_hz=self._clock_hz,
            voltage=self._voltage,
            powered_cores=self._powered_cores,
            active_cores=active,
        )

    def run_mixed(
        self,
        programs: Sequence[LoopProgram],
        iterations: int = 16,
    ) -> PeriodicResponse:
        """Co-run a different program on each active core.

        ``programs`` supplies one loop per active core (at most the
        powered count); the rail sees the superposition -- the realistic
        scenario where a virus owns only some of the cores while other
        work runs alongside.
        """
        if not 1 <= len(programs) <= self._powered_cores:
            raise ValueError(
                f"{self.name}: need 1..{self._powered_cores} programs, "
                f"got {len(programs)}"
            )
        from repro.cpu.multicore import execute_mixed_on_cluster

        core = CoreModel(
            pipeline=self._pipeline,
            current_model=self.spec.current_model,
            clock_hz=self._clock_hz,
        )
        execution = execute_mixed_on_cluster(
            core,
            programs,
            uncore_current_a=self.spec.uncore_current_a,
            iterations=iterations,
        )
        trace = execution.load_current * self._current_scale()
        response = self._pdn.solver(self._powered_cores).solve(
            trace, execution.sample_rate_hz
        )
        return _recentered(response, self._voltage)

    def run_nondeterministic(
        self,
        program: LoopProgram,
        cache_model,
        memory_rng: np.random.Generator,
        active_cores: Optional[int] = None,
        iterations: int = 16,
    ) -> "NondeterministicRun":
        """Execute with cache-miss timing nondeterminism enabled.

        Reproduces the environment the paper's virus template avoids
        (Section 3.3): memory accesses beyond the L1-resident window
        miss with random penalties, so every call returns a slightly
        different rail response -- a noisy fitness signal for the GA
        cache-miss ablation.
        """
        active = active_cores if active_cores is not None else (
            self._powered_cores
        )
        if active > self._powered_cores:
            raise ValueError(
                f"{self.name}: {active} active cores exceed "
                f"{self._powered_cores} powered"
            )
        model = self.spec.current_model
        traces = []
        windows = []
        for _ in range(active):
            window = self._pipeline.windowed_schedule(
                program,
                iterations=iterations,
                cache=cache_model,
                memory_rng=memory_rng,
            )
            windows.append(window)
            traces.append(model.window_trace(window))
        length = max(t.size for t in traces)
        combined = np.full(length, self.spec.uncore_current_a)
        for trace in traces:
            padded = np.full(length, model.base_current_a)
            padded[: trace.size] = trace
            combined += padded
        combined *= self._current_scale()
        response = self._pdn.solver(self._powered_cores).solve(
            combined, self._clock_hz
        )
        response = _recentered(response, self._voltage)
        return NondeterministicRun(
            cluster=self,
            program=program,
            windows=windows,
            response=response,
            clock_hz=self._clock_hz,
            voltage=self._voltage,
            active_cores=active,
        )

    def run_trace(
        self, load_current: np.ndarray, sample_rate_hz: float
    ) -> PeriodicResponse:
        """Rail response to an explicit current trace (SCL, idle, noise)."""
        response = self._pdn.solver(self._powered_cores).solve(
            np.asarray(load_current, dtype=float) * (
                self._voltage / self.spec.nominal_voltage
            ),
            sample_rate_hz,
        )
        return _recentered(response, self._voltage)


def _recentered(
    response: PeriodicResponse, supply_voltage: float
) -> PeriodicResponse:
    """Shift a response to a non-nominal supply voltage setting."""
    if supply_voltage == response.nominal_voltage:
        return response
    delta = supply_voltage - response.nominal_voltage
    return PeriodicResponse(
        sample_rate_hz=response.sample_rate_hz,
        nominal_voltage=supply_voltage,
        die_voltage=response.die_voltage + delta,
        die_current=response.die_current,
        harmonic_frequencies_hz=response.harmonic_frequencies_hz,
        die_voltage_harmonics=response.die_voltage_harmonics,
        die_current_harmonics=response.die_current_harmonics,
    )


@dataclass
class ClusterRun:
    """One steady-state program execution on a cluster."""

    cluster: Cluster
    program: LoopProgram
    execution: ClusterExecution
    response: PeriodicResponse
    clock_hz: float
    voltage: float
    powered_cores: int
    active_cores: int

    @property
    def ipc(self) -> float:
        return self.execution.ipc

    @property
    def loop_frequency_hz(self) -> float:
        return self.execution.loop_frequency_hz

    @property
    def loop_period_s(self) -> float:
        return self.execution.loop_period_s

    @property
    def max_droop(self) -> float:
        return self.response.max_droop

    @property
    def peak_to_peak(self) -> float:
        return self.response.peak_to_peak


@dataclass
class NondeterministicRun:
    """One cache-nondeterministic execution window on a cluster."""

    cluster: Cluster
    program: LoopProgram
    windows: list
    response: PeriodicResponse
    clock_hz: float
    voltage: float
    active_cores: int

    @property
    def ipc(self) -> float:
        return self.windows[0].ipc

    @property
    def loop_frequency_hz(self) -> float:
        mean_cycles = self.windows[0].mean_iteration_cycles()
        return self.clock_hz / mean_cycles

    @property
    def timing_jitter_cycles(self) -> float:
        """Per-iteration period spread (zero without cache misses)."""
        return self.windows[0].iteration_jitter_cycles()

    @property
    def max_droop(self) -> float:
        return self.response.max_droop

    @property
    def peak_to_peak(self) -> float:
        return self.response.peak_to_peak
