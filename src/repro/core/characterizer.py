"""EMCharacterizer: the antenna-side view of one or more clusters.

The characterizer owns the receive chain (radiator model per domain,
antenna, coupling, spectrum analyzer) and measures whatever the
clusters are currently executing.  It is deliberately *one-way*: no
electrical connection to the platform, only the radiated spectrum --
the non-intrusiveness the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.chain import (
    ChainItem,
    ChainRequest,
    SignalPath,
    SimulationSession,
)
from repro.cpu.program import LoopProgram
from repro.core.results import MeasurementResult, MultiDomainSpectrum
from repro.em.radiation import DieRadiator, EmissionSpectrum, combine_emissions
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer, SpectrumTrace
from repro.obs.context import RunContext
from repro.obs.events import NULL_LOG, EventLog
from repro.platforms.base import Cluster, ClusterRun

FIRST_ORDER_BAND = (50.0e6, 200.0e6)


@dataclass
class EMMeasurement:
    """One EM measurement of a running program."""

    amplitude_w: float
    peak_frequency_hz: float
    trace: SpectrumTrace
    run: ClusterRun

    @property
    def loop_frequency_hz(self) -> float:
        return self.run.loop_frequency_hz


class EMCharacterizer:
    """Non-intrusive PDN characterization through EM emanations."""

    def __init__(
        self,
        analyzer: Optional[SpectrumAnalyzer] = None,
        radiator: Optional[DieRadiator] = None,
        band: Tuple[float, float] = FIRST_ORDER_BAND,
        samples: int = 30,
        session: Optional[SimulationSession] = None,
        fault_injector=None,
    ):
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.radiator = radiator or DieRadiator()
        self.band = band
        self.samples = samples
        #: Cross-call cache shared by every measurement this
        #: characterizer performs (and by collaborators that pass it on).
        self.session = session if session is not None else (
            SimulationSession()
        )
        #: Optional repro.faults.FaultInjector armed at every chain
        #: stage boundary of this characterizer's measurements.
        self.fault_injector = fault_injector

    def chain_path(self) -> SignalPath:
        """The measurement chain for the present receive hardware.

        Built per call (stages are tiny stateless objects) so swapping
        ``analyzer`` / ``radiator`` after construction keeps working;
        the expensive state lives in the persistent :attr:`session`.
        """
        return SignalPath.em_chain(
            self.radiator,
            self.analyzer,
            session=self.session,
            injector=self.fault_injector,
        )

    # ------------------------------------------------------------------
    def emission_of(self, run: ClusterRun) -> EmissionSpectrum:
        """Radiated spectrum of one cluster's steady-state execution."""
        return self.radiator.emission(run.response)

    def measure(
        self,
        cluster: Cluster,
        program: LoopProgram,
        active_cores: Optional[int] = None,
        samples: Optional[int] = None,
    ) -> EMMeasurement:
        """Run ``program`` and measure the banded EM amplitude.

        Thin shim over a one-item :meth:`measure_batch`; pinned
        bit-identical to the historical per-call implementation by
        ``tests/chain/test_equivalence.py``.
        """
        return self.measure_batch(
            cluster, [program], active_cores=active_cores, samples=samples
        )[0]

    def measure_batch(
        self,
        cluster: Cluster,
        programs: Sequence[LoopProgram],
        active_cores: Optional[int] = None,
        samples: Optional[int] = None,
        items: Optional[Sequence[ChainItem]] = None,
        event_log: EventLog = NULL_LOG,
    ) -> Sequence[EMMeasurement]:
        """Measure N programs (or explicit chain ``items``) in one call.

        The whole batch moves through the signal path stage by stage,
        sharing the session caches; results come back in request order
        with the analyzer RNG advanced exactly as N sequential
        :meth:`measure` calls would have advanced it.
        """
        if items is None:
            items = [
                ChainItem(program=p, active_cores=active_cores)
                for p in programs
            ]
        request = ChainRequest(
            cluster=cluster,
            items=items,
            band=self.band,
            samples=samples if samples is not None else self.samples,
            want_amplitude=True,
            want_trace=True,
        )
        result = self.chain_path().run(request, event_log=event_log)
        return [
            EMMeasurement(
                amplitude_w=item.amplitude_w,
                peak_frequency_hz=item.peak_frequency_hz,
                trace=item.trace,
                run=item.to_cluster_run(cluster),
            )
            for item in result.items
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        ctx: RunContext,
        program: Optional[LoopProgram] = None,
        samples: Optional[int] = None,
    ) -> MeasurementResult:
        """Unified entry point: measure ``ctx.cluster`` and return a
        JSON-round-trippable :class:`MeasurementResult`.

        ``program`` defaults to the fixed high/low sweep loop of
        Section 5.3 -- the canonical "point the antenna at it" probe.
        """
        if program is None:
            from repro.workloads.loops import high_low_program

            program = high_low_program(ctx.cluster.spec.isa)
        ctx.event_log.emit(
            "em_measurement_start",
            cluster=ctx.cluster.name,
            program=program.name,
            band_hz=self.band,
        )
        measurement = self.measure(
            ctx.cluster,
            program,
            active_cores=ctx.active_cores,
            samples=samples,
        )
        result = MeasurementResult(
            cluster_name=ctx.cluster.name,
            program_name=program.name,
            amplitude_w=measurement.amplitude_w,
            peak_frequency_hz=measurement.peak_frequency_hz,
            loop_frequency_hz=measurement.loop_frequency_hz,
            band_hz=self.band,
            frequencies_hz=measurement.trace.frequencies_hz,
            power_dbm=measurement.trace.power_dbm,
        )
        ctx.event_log.emit(
            "em_measurement_end",
            cluster=ctx.cluster.name,
            amplitude_w=result.amplitude_w,
            peak_frequency_hz=result.peak_frequency_hz,
            loop_frequency_hz=result.loop_frequency_hz,
        )
        return result

    # ------------------------------------------------------------------
    def monitor_domains(
        self,
        executions: Dict[str, ClusterRun],
    ) -> MultiDomainSpectrum:
        """Simultaneously observe several voltage domains (Fig. 15).

        ``executions`` maps cluster name -> a steady-state run on that
        cluster.  The antenna receives the superposition; each domain's
        signature is located as the combined trace's peak nearest that
        domain's strongest emission line.
        """
        emissions = {
            name: self.emission_of(run) for name, run in executions.items()
        }
        combined = combine_emissions(emissions.values())
        trace = self.analyzer.sweep(combined)
        peaks: Dict[str, Tuple[float, float]] = {}
        for name, emission in emissions.items():
            banded = emission.band(*self.band)
            f_line, _ = banded.peak()
            if f_line <= 0.0:
                continue
            peaks[name] = (f_line, trace.power_at(f_line))
        return MultiDomainSpectrum(trace=trace, domain_peaks=peaks)

    # ------------------------------------------------------------------
    def spectrum_vs_scope_fft(
        self,
        run: ClusterRun,
        scope_capture,
        spike_count: int = 4,
    ) -> Dict[str, Sequence[Tuple[float, float]]]:
        """Fig. 9's comparison data: SA spikes vs scope-FFT spikes.

        Returns the top ``spike_count`` spectral lines from both
        instruments so agreement can be checked line-by-line.
        """
        emission = self.emission_of(run)
        trace = self.analyzer.sweep(emission)
        sa_spikes = _top_spikes(
            trace.frequencies_hz, trace.power_dbm, spike_count
        )
        freqs, amps = scope_capture.fft()
        mask = (freqs >= self.band[0]) & (freqs <= self.band[1])
        dso_spikes = _top_spikes(freqs[mask], amps[mask], spike_count)
        return {"spectrum_analyzer": sa_spikes, "oc_dso_fft": dso_spikes}


def _top_spikes(
    freqs: np.ndarray, values: np.ndarray, count: int
) -> Sequence[Tuple[float, float]]:
    """The ``count`` strongest local maxima, strongest first."""
    if freqs.size < 3:
        return [(float(f), float(v)) for f, v in zip(freqs, values)]
    interior = np.flatnonzero(
        (values[1:-1] >= values[:-2]) & (values[1:-1] >= values[2:])
    ) + 1
    ranked = interior[np.argsort(values[interior])[::-1][:count]]
    return [(float(freqs[i]), float(values[i])) for i in sorted(ranked)]
