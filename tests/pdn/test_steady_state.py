"""Unit tests for the periodic steady-state solver."""

import numpy as np
import pytest

from repro.pdn.models import PDNModel, CORTEX_A72_PDN
from repro.pdn.steady_state import SteadyStateSolver


@pytest.fixture(scope="module")
def solver():
    return PDNModel(CORTEX_A72_PDN).solver(2)


class TestSolveBasics:
    def test_rejects_bad_input(self, solver):
        with pytest.raises(ValueError):
            solver.solve(np.array([1.0]), 1e9)
        with pytest.raises(ValueError):
            solver.solve(np.ones((2, 2)), 1e9)

    def test_constant_load_gives_pure_ir_drop(self, solver):
        resp = solver.solve(np.full(64, 2.0), 1.2e9)
        # no AC content: droop equals the IR drop, peak-to-peak ~ 0
        assert resp.peak_to_peak == pytest.approx(0.0, abs=1e-9)
        assert 0.0 < resp.max_droop < 0.05

    def test_ir_drop_scales_with_current(self, solver):
        r1 = solver.solve(np.full(64, 1.0), 1.2e9)
        r2 = solver.solve(np.full(64, 2.0), 1.2e9)
        assert r2.max_droop == pytest.approx(2.0 * r1.max_droop, rel=1e-6)

    def test_linearity_of_response(self, solver):
        """Doubling the load waveform doubles the deviation (linear PDN)."""
        rng = np.random.default_rng(0)
        wave = 1.0 + 0.5 * rng.standard_normal(128)
        ra = solver.solve(wave, 1.2e9)
        rb = solver.solve(2.0 * wave, 1.2e9)
        dev_a = ra.die_voltage - ra.nominal_voltage
        dev_b = rb.die_voltage - rb.nominal_voltage
        assert np.allclose(dev_b, 2.0 * dev_a, atol=1e-12)

    def test_mean_die_current_matches_mean_load(self, solver):
        wave = np.abs(np.random.default_rng(1).standard_normal(128)) + 1.0
        resp = solver.solve(wave, 1.2e9)
        assert np.mean(resp.die_current) == pytest.approx(
            np.mean(wave), rel=1e-6
        )


class TestResonantAmplification:
    def test_square_wave_at_resonance_beats_off_resonance(self, solver):
        n = 64
        wave = np.where(np.arange(n) < n // 2, 1.0, 0.0)
        at_res = solver.solve(wave, n * 67e6)
        off_res = solver.solve(wave, n * 150e6)
        assert at_res.peak_to_peak > 1.5 * off_res.peak_to_peak

    def test_dominant_frequency_is_excitation_frequency(self, solver):
        n = 64
        f0 = 67e6
        wave = np.where(np.arange(n) < n // 2, 1.0, 0.0)
        resp = solver.solve(wave, n * f0)
        assert resp.dominant_frequency_hz((50e6, 200e6)) == pytest.approx(
            f0, rel=0.01
        )

    def test_band_filter_raises_when_empty(self, solver):
        resp = solver.solve(np.ones(16) + np.sin(np.arange(16)), 1.2e9)
        with pytest.raises(ValueError):
            resp.dominant_frequency_hz((1.0, 2.0))


class TestSpectra:
    def test_voltage_spectrum_shapes(self, solver):
        resp = solver.solve(np.random.default_rng(2).random(100), 1e9)
        f, a = resp.voltage_spectrum()
        assert f.shape == a.shape == (51,)
        fc, ac = resp.current_spectrum()
        assert fc.shape == ac.shape == (51,)

    def test_sine_load_round_trip(self, solver):
        """A sine load has exactly one nonzero AC harmonic."""
        n = 128
        fs = n * 60e6
        t = np.arange(n) / fs
        wave = 1.0 + 0.3 * np.sin(2 * np.pi * 60e6 * t)
        resp = solver.solve(wave, fs)
        f, a = resp.current_spectrum()
        nonzero = np.flatnonzero(a[1:] > 1e-9) + 1
        assert list(nonzero) == [1]
        assert f[1] == pytest.approx(60e6)

    def test_period_property(self, solver):
        resp = solver.solve(np.ones(50) + np.sin(np.arange(50)), 1e9)
        assert resp.period_s == pytest.approx(50 / 1e9)


class TestTransferCache:
    def test_cache_hit_is_fast_and_identical(self, solver):
        wave = np.random.default_rng(3).random(64)
        r1 = solver.solve(wave, 1.2e9)
        r2 = solver.solve(wave, 1.2e9)
        assert np.allclose(r1.die_voltage, r2.die_voltage)
