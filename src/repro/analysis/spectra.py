"""Spectral-line extraction and cross-instrument agreement (Fig. 9)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def spectral_lines(
    frequencies_hz: np.ndarray,
    values: np.ndarray,
    count: int = 5,
    floor: float = None,
) -> List[Tuple[float, float]]:
    """The ``count`` strongest local maxima above ``floor``.

    Returns (frequency, value) sorted by descending value.
    """
    f = np.asarray(frequencies_hz, dtype=float)
    v = np.asarray(values, dtype=float)
    if f.shape != v.shape:
        raise ValueError("frequency and value arrays must align")
    if f.size < 3:
        return sorted(zip(f, v), key=lambda p: -p[1])[:count]
    interior = (
        np.flatnonzero((v[1:-1] >= v[:-2]) & (v[1:-1] >= v[2:])) + 1
    )
    if floor is not None:
        interior = interior[v[interior] > floor]
    ranked = interior[np.argsort(v[interior])[::-1][:count]]
    return [(float(f[i]), float(v[i])) for i in ranked]


def spikes_agree(
    lines_a: Sequence[Tuple[float, float]],
    lines_b: Sequence[Tuple[float, float]],
    tolerance_hz: float = 2.0e6,
    require: int = 2,
) -> bool:
    """Do two instruments agree on at least ``require`` spike locations?

    Fig. 9's claim: the spectrum analyzer and the FFT of the OC-DSO's
    voltage record show spikes at the same frequencies (the dominant
    resonance line and the virus's loop-frequency line).
    """
    matched = 0
    for fa, _ in lines_a:
        if any(abs(fa - fb) <= tolerance_hz for fb, _ in lines_b):
            matched += 1
    return matched >= require
