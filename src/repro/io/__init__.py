"""Persistence: archive generated viruses and characterization results.

A post-silicon lab wants the generated stress tests on disk: the loop,
the platform it targets, the measured numbers.  This package provides
JSON round-trips for programs and GA run summaries, plus the rendered
assembly next to them.
"""

from repro.io.serialization import (
    load_population,
    load_program,
    load_virus_archive,
    program_from_dict,
    program_to_dict,
    save_population,
    save_program,
    save_virus_archive,
)

__all__ = [
    "program_to_dict",
    "program_from_dict",
    "save_program",
    "load_program",
    "save_virus_archive",
    "load_virus_archive",
    "save_population",
    "load_population",
]
