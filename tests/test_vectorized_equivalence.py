"""Vectorized kernels must match their preserved reference paths.

Each optimized hot path keeps its pre-refactor implementation as a
``*_reference`` method; this suite pins them together:

* issue schedules are **cycle-exact** (integer equality),
* current traces agree to ``rtol=1e-12`` (pure reordering of float
  sums),
* transient node voltages agree to ``rtol=1e-12`` with a small
  absolute allowance (2e-11 V) for ULP accumulation across ~1300
  trapezoidal steps, and branch currents to 1e-10 on ampere-scale
  signals.
"""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.cache import CacheModel
from repro.cpu.current import CurrentModel
from repro.cpu.isa import InstructionSet
from repro.cpu.pipeline import InOrderPipeline, OutOfOrderPipeline
from repro.cpu.program import (
    program_from_mnemonics,
    random_program,
)
from repro.pdn.elements import CurrentSource
from repro.pdn.models import (
    AMD_ATHLON_PDN,
    CORTEX_A53_PDN,
    CORTEX_A72_PDN,
    PDNModel,
)
from repro.pdn.transient import TransientSolver

WIDE_MEM_ISA = InstructionSet(
    name="armv8-wide-mem",
    specs=ARM_ISA.specs,
    registers=dict(ARM_ISA.registers),
    memory_slots=256,
)


def alu_program():
    return program_from_mnemonics(ARM_ISA, ["add"] * 8)


def div_shadow_program():
    return program_from_mnemonics(ARM_ISA, ["add"] * 8 + ["sdiv"])


def memory_program():
    rng = np.random.default_rng(3)
    return random_program(
        WIDE_MEM_ISA,
        24,
        rng,
        pool=(
            WIDE_MEM_ISA.spec("ldr"),
            WIDE_MEM_ISA.spec("str"),
            WIDE_MEM_ISA.spec("add"),
            WIDE_MEM_ISA.spec("fmul"),
        ),
    )


PROGRAMS = {
    "alu": alu_program,
    "div-shadow": div_shadow_program,
    "memory": memory_program,
}

PIPELINES = {
    "in-order": lambda: InOrderPipeline(),
    "out-of-order": lambda: OutOfOrderPipeline(),
}


@pytest.fixture(params=list(PROGRAMS), ids=list(PROGRAMS))
def program(request):
    return PROGRAMS[request.param]()


@pytest.fixture(params=list(PIPELINES), ids=list(PIPELINES))
def pipeline(request):
    return PIPELINES[request.param]()


class TestScheduleEquivalence:
    def test_issue_schedules_are_cycle_exact(self, pipeline, program):
        fast = pipeline.execute(program, iterations=16)
        ref = pipeline.execute_reference(program, iterations=16)
        assert np.array_equal(fast, ref)

    def test_random_programs_are_cycle_exact(self, pipeline):
        rng = np.random.default_rng(17)
        for i in range(5):
            prog = random_program(ARM_ISA, 50, rng, name=f"rand{i}")
            fast = pipeline.execute(prog, iterations=16)
            ref = pipeline.execute_reference(prog, iterations=16)
            assert np.array_equal(fast, ref)

    def test_cache_path_preserves_rng_draw_order(self, pipeline):
        """The nondeterministic memory path must consume the RNG in the
        same order, so the same seed gives the same schedule."""
        prog = memory_program()
        cache = CacheModel(l1_slots=64, miss_penalty=60, penalty_jitter=16)
        fast = pipeline.execute(
            prog, 16, cache=cache, memory_rng=np.random.default_rng(5)
        )
        ref = pipeline.execute_reference(
            prog, 16, cache=cache, memory_rng=np.random.default_rng(5)
        )
        assert np.array_equal(fast, ref)


class TestCurrentEquivalence:
    def test_trace_matches_reference(self, pipeline, program):
        sched = pipeline.steady_schedule(program, iterations=16)
        model = CurrentModel()
        np.testing.assert_allclose(
            model.trace(sched),
            model.trace_reference(sched),
            rtol=1e-12,
            atol=0,
        )

    def test_short_trace_smoothing(self):
        """Traces shorter than the smoothing window still wrap correctly."""
        sched = InOrderPipeline().steady_schedule(
            program_from_mnemonics(ARM_ISA, ["add", "add"])
        )
        model = CurrentModel(smoothing_cycles=8)
        np.testing.assert_allclose(
            model.trace(sched),
            model.trace_reference(sched),
            rtol=1e-12,
            atol=0,
        )

    def test_window_trace_matches_reference(self, pipeline):
        prog = memory_program()
        cache = CacheModel(l1_slots=64, miss_penalty=60, penalty_jitter=16)
        windowed = pipeline.windowed_schedule(
            prog, 16, cache=cache, memory_rng=np.random.default_rng(9)
        )
        model = CurrentModel()
        np.testing.assert_allclose(
            model.window_trace(windowed),
            model.window_trace_reference(windowed),
            rtol=1e-12,
            atol=0,
        )


PDN_CASES = {
    "a72": (CORTEX_A72_PDN, 2),
    "a53": (CORTEX_A53_PDN, 4),
    "amd": (AMD_ATHLON_PDN, 1),
}


@pytest.fixture(params=list(PDN_CASES), ids=list(PDN_CASES))
def pdn_circuit(request):
    params, cores = PDN_CASES[request.param]
    circuit = PDNModel(params).build_circuit(powered_cores=cores)
    period = 1.0 / 100e6
    circuit.add(
        CurrentSource(
            "iload",
            "die",
            "0",
            current=lambda t: 1.5 if (t % period) < period / 2 else 0.3,
        )
    )
    return circuit


class TestTransientEquivalence:
    def test_run_matches_reference(self, pdn_circuit):
        solver = TransientSolver(pdn_circuit, dt=0.25e-9)
        fast = solver.run(320e-9)
        ref = solver.run_reference(320e-9)
        np.testing.assert_allclose(fast.times, ref.times, rtol=0, atol=0)
        for node in fast.node_voltages:
            np.testing.assert_allclose(
                fast.voltage(node),
                ref.voltage(node),
                rtol=1e-12,
                atol=2e-11,  # ULP accumulation over ~1300 steps
                err_msg=f"node {node}",
            )
        for branch in fast.branch_currents:
            np.testing.assert_allclose(
                fast.current(branch),
                ref.current(branch),
                rtol=1e-10,
                atol=1e-10,
                err_msg=f"branch {branch}",
            )
