"""The six measurement-chain stages.

Each stage transforms every item of a batch in request order:

    execute -> current -> pdn-steady-state -> radiate -> propagate -> receive

The numeric code paths are the exact ones the legacy per-call helpers
(``Cluster.run``, ``SpectrumAnalyzer.max_amplitude`` / ``sweep``) use,
in the same floating-point operation order, so batched results are
bit-identical to the per-call path.  RNG discipline: the execute stage
draws only from per-item ``memory_rng`` generators, the receive stage
only from the analyzer RNG, and both consume items in request order --
so per-stream draw sequences match a sequential legacy loop even though
the stages are batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple

import numpy as np

from repro.chain.session import SimulationSession
from repro.chain.types import ChainItemResult, ChainRequest


@dataclass
class ItemWork:
    """One item's in-flight state while a batch moves through the path."""

    result: ChainItemResult
    raw_current: Optional[np.ndarray] = None
    load_current: Optional[np.ndarray] = None


@dataclass
class ChainBatch:
    """A resolved request: per-item operating points plus scratch state."""

    request: ChainRequest
    session: SimulationSession
    work: List[ItemWork] = field(default_factory=list)

    @property
    def cluster(self):
        return self.request.cluster


class Stage(Protocol):
    """One step of the signal path, applied to a whole batch in place.

    ``drains`` declares which RNG stream families the stage is entitled
    to advance (``"memory"`` for per-item ``memory_rng`` generators,
    ``"analyzer"`` for the analyzer RNG); the determinism audit's draw
    ledger enforces it at every stage boundary.
    """

    name: str
    drains: Tuple[str, ...]

    def run(self, batch: ChainBatch) -> None: ...


def resolve_request(
    request: ChainRequest, session: SimulationSession
) -> ChainBatch:
    """Pin every item to an explicit operating point.

    Per-item overrides are validated with the same checks (and error
    messages) as the platform setters; unset fields fall back to the
    cluster's live state, read once through the session's
    version-tracked snapshot.  After this point the chain never touches
    the cluster's mutable state.
    """
    cluster = request.cluster
    base = session.cluster_state(cluster)
    batch = ChainBatch(request=request, session=session)
    for item in request.items:
        item.validate()
        op = item.operating_point
        clock = base.clock_hz
        voltage = base.voltage
        powered = base.powered_cores
        if op.clock_hz is not None:
            cluster.validate_clock(op.clock_hz)
            clock = op.clock_hz
        if op.voltage is not None:
            cluster.validate_voltage(op.voltage)
            voltage = op.voltage
        if op.powered_cores is not None:
            cluster.validate_powered_cores(op.powered_cores)
            powered = op.powered_cores
        if item.mode == "mixed":
            if not 1 <= len(item.programs) <= powered:
                raise ValueError(
                    f"{cluster.name}: need 1..{powered} programs, "
                    f"got {len(item.programs)}"
                )
            active = len(item.programs)
        else:
            active = (
                item.active_cores
                if item.active_cores is not None
                else powered
            )
            if active > powered:
                raise ValueError(
                    f"{cluster.name}: {active} active cores exceed "
                    f"{powered} powered"
                )
        batch.work.append(
            ItemWork(
                result=ChainItemResult(
                    item=item,
                    clock_hz=clock,
                    voltage=voltage,
                    powered_cores=powered,
                    active_cores=active,
                )
            )
        )
    return batch


class ExecuteStage:
    """Instruction scheduling: program -> per-cycle current trace.

    Single-program executions come from the session cache (schedule and
    amperes-per-cycle are operating-point independent); mixed and
    cache-nondeterministic items are computed fresh, the latter drawing
    from the item's ``memory_rng`` exactly as
    ``Cluster.run_nondeterministic`` does.
    """

    name = "execute"
    drains = ("memory",)

    def run(self, batch: ChainBatch) -> None:
        cluster = batch.cluster
        for w in batch.work:
            item = w.result.item
            mode = item.mode
            if mode == "single":
                execution = batch.session.execution(
                    cluster,
                    item.program,
                    active_cores=w.result.active_cores,
                    clock_hz=w.result.clock_hz,
                    iterations=item.iterations,
                    phase_offsets=item.phase_offsets,
                )
                w.result.execution = execution
                w.raw_current = execution.load_current
            elif mode == "mixed":
                from repro.cpu.multicore import (
                    CoreModel,
                    execute_mixed_on_cluster,
                )

                core = CoreModel(
                    pipeline=cluster.pipeline,
                    current_model=cluster.spec.current_model,
                    clock_hz=w.result.clock_hz,
                )
                execution = execute_mixed_on_cluster(
                    core,
                    item.programs,
                    uncore_current_a=cluster.spec.uncore_current_a,
                    iterations=item.iterations,
                )
                w.result.execution = execution
                w.raw_current = execution.load_current
            else:  # nondeterministic
                model = cluster.spec.current_model
                traces = []
                windows = []
                for _ in range(w.result.active_cores):
                    window = cluster.pipeline.windowed_schedule(
                        item.program,
                        iterations=item.iterations,
                        cache=item.cache_model,
                        memory_rng=item.memory_rng,
                    )
                    windows.append(window)
                    traces.append(model.window_trace(window))
                length = max(t.size for t in traces)
                combined = np.full(length, cluster.spec.uncore_current_a)
                for trace in traces:
                    padded = np.full(length, model.base_current_a)
                    padded[: trace.size] = trace
                    combined += padded
                w.result.windows = windows
                w.raw_current = combined


class CurrentStage:
    """Operating-point scaling of the raw per-cycle current trace."""

    name = "current"
    drains = ()

    def run(self, batch: ChainBatch) -> None:
        cluster = batch.cluster
        for w in batch.work:
            scale = cluster.current_scale(
                clock_hz=w.result.clock_hz, voltage=w.result.voltage
            )
            trace = w.raw_current * scale
            if w.result.item.mode == "single" and trace.size < 4:
                # Degenerate loops (period of 1-3 cycles) are still
                # periodic; tile them so the spectral solver has a
                # valid grid.
                trace = np.tile(trace, int(np.ceil(4 / trace.size)))
            w.load_current = trace


class PDNStage:
    """Periodic steady-state rail response through the PDN model."""

    name = "pdn"
    drains = ()

    def run(self, batch: ChainBatch) -> None:
        cluster = batch.cluster
        for w in batch.work:
            w.result.response = batch.session.pdn_solve(
                cluster,
                powered_cores=w.result.powered_cores,
                voltage=w.result.voltage,
                load_current=w.load_current,
                sample_rate_hz=w.result.clock_hz,
            )


class RadiateStage:
    """Die current harmonics -> radiated emission lines."""

    name = "radiate"
    drains = ()

    def __init__(self, radiator):
        self.radiator = radiator

    def run(self, batch: ChainBatch) -> None:
        if not batch.request.want_emission:
            return
        for w in batch.work:
            grid_key = (w.load_current.size, w.result.clock_hz)
            freqs = w.result.response.harmonic_frequencies_hz[1:]
            tilt = batch.session.radiator_tilt(
                self.radiator, freqs, grid_key
            )
            w.result.emission = self.radiator.emission(
                w.result.response, tilt=tilt
            )


class PropagateStage:
    """Emission lines -> noiseless per-bin signal power at the port.

    The deterministic half of the analyzer readout, computed once per
    item and shared by the amplitude metric and the displayed trace
    (the legacy per-call path recomputed it for each).
    """

    name = "propagate"
    drains = ()

    def __init__(self, analyzer):
        self.analyzer = analyzer

    def run(self, batch: ChainBatch) -> None:
        if not batch.request.want_emission:
            return
        for w in batch.work:
            grid_key = (w.load_current.size, w.result.clock_hz)
            lines = self.analyzer.banded_lines(w.result.emission)
            gains = batch.session.line_gains(
                self.analyzer, lines.frequencies_hz, grid_key
            )
            w.result.signal_w = self.analyzer.received_power_w(
                w.result.emission, gains=gains
            )


class ReceiveStage:
    """Noisy analyzer readout: amplitude metric and/or displayed trace.

    Draws from the analyzer RNG in request order -- per item, amplitude
    samples first, then the trace sweep -- matching the draw order of a
    sequential ``max_amplitude`` + ``sweep`` loop bit for bit.
    """

    name = "receive"
    drains = ("analyzer",)

    def __init__(self, analyzer):
        self.analyzer = analyzer

    def run(self, batch: ChainBatch) -> None:
        request = batch.request
        if not request.want_emission:
            return
        for w in batch.work:
            if request.want_amplitude:
                mask = batch.session.band_mask(self.analyzer, request.band)
                w.result.amplitude_w = (
                    self.analyzer.max_amplitude_from_power(
                        w.result.signal_w,
                        band=request.band,
                        samples=request.samples,
                        mask=mask,
                    )
                )
            if request.want_trace:
                trace = self.analyzer.trace_from_power(w.result.signal_w)
                w.result.trace = trace
                w.result.peak_frequency_hz = trace.peak(request.band)[0]
            elif w.result.emission is not None:
                w.result.peak_frequency_hz = (
                    w.result.emission.band(*request.band).peak()[0]
                )
