"""EventLog and sink behaviour."""

import json

import numpy as np

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    NULL_LOG,
    EventLog,
    JsonlFileSink,
    MemorySink,
    StderrSink,
    jsonable,
    read_jsonl,
)


class TestJsonable:
    def test_passthrough_primitives(self):
        assert jsonable(3) == 3
        assert jsonable("x") == "x"
        assert jsonable(None) is None

    def test_numpy_scalars_serializable(self):
        # np.float64 subclasses float and passes through; non-float
        # numpy scalars are converted via .item().
        assert json.dumps(jsonable(np.float64(1.5))) == "1.5"
        out = jsonable(np.int32(7))
        assert out == 7
        assert type(out) is int

    def test_arrays_become_lists(self):
        assert jsonable(np.arange(3)) == [0, 1, 2]

    def test_nested_containers(self):
        out = jsonable({"a": (np.float32(1.0), [np.int64(2)])})
        assert out == {"a": [1.0, [2]]}
        json.dumps(out)


class TestMemorySink:
    def test_records_in_emission_order(self):
        sink = MemorySink()
        log = EventLog([sink])
        log.emit("first", x=1)
        log.emit("second", x=2)
        log.emit("first", x=3)
        names = [r["event"] for r in sink.records]
        assert names == ["first", "second", "first"]
        assert [r["seq"] for r in sink.records] == [0, 1, 2]

    def test_events_filter(self):
        sink = MemorySink()
        log = EventLog([sink])
        log.emit("keep", n=1)
        log.emit("drop")
        log.emit("keep", n=2)
        kept = sink.events("keep")
        assert [r["n"] for r in kept] == [1, 2]

    def test_record_schema(self):
        sink = MemorySink()
        log = EventLog([sink])
        log.emit("thing", value=np.float64(2.0))
        (rec,) = sink.records
        assert rec["v"] == EVENT_SCHEMA_VERSION
        assert rec["event"] == "thing"
        assert rec["seq"] == 0
        assert rec["t"] >= 0.0
        assert rec["wall"] > 0.0
        assert rec["value"] == 2.0
        # every record must be JSON-serializable as emitted
        json.dumps(rec)

    def test_monotonic_t_and_seq(self):
        sink = MemorySink()
        log = EventLog([sink])
        for i in range(5):
            log.emit("tick", i=i)
        ts = [r["t"] for r in sink.records]
        seqs = [r["seq"] for r in sink.records]
        assert ts == sorted(ts)
        assert seqs == list(range(5))


class TestEventLog:
    def test_null_log_disabled(self):
        assert not NULL_LOG.enabled
        NULL_LOG.emit("ignored", x=1)  # must be a cheap no-op

    def test_enabled_with_sink(self):
        assert EventLog([MemorySink()]).enabled

    def test_add_sink(self):
        log = EventLog()
        sink = MemorySink()
        log.add_sink(sink)
        log.emit("e")
        assert len(sink.records) == 1

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog([JsonlFileSink(path)]) as log:
            log.emit("a", n=1)
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["a"]

    def test_fanout_to_multiple_sinks(self):
        first, second = MemorySink(), MemorySink()
        log = EventLog([first, second])
        log.emit("x")
        assert len(first.records) == len(second.records) == 1


class TestJsonlFileSink:
    def test_appends_and_round_trips(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        log = EventLog([JsonlFileSink(path)])
        log.emit("one", a=1)
        log.emit("two", b=[1.0, 2.0])
        log.close()
        # a second log appends (resume semantics)
        log2 = EventLog([JsonlFileSink(path)])
        log2.emit("three")
        log2.close()
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["one", "two", "three"]
        assert records[1]["b"] == [1.0, 2.0]

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog([JsonlFileSink(path)])
        log.emit("x", arr=np.arange(2))
        log.close()
        for line in path.read_text().splitlines():
            json.loads(line)


class TestStderrSink:
    def test_writes_jsonl_to_stderr(self, capsys):
        log = EventLog([StderrSink()])
        log.emit("hello", n=1)
        err = capsys.readouterr().err
        rec = json.loads(err.strip())
        assert rec["event"] == "hello"
        assert rec["n"] == 1
