"""Unit tests for the GPU platform extension."""

import numpy as np
import pytest

from repro.cpu.isa import InstructionClass
from repro.pdn.models import PDNModel
from repro.platforms.base import NoiseVisibility
from repro.platforms.gpu import GPU_ISA, GPU_PDN, make_gpu_card
from repro.workloads.loops import high_low_program


@pytest.fixture
def gpu():
    card = make_gpu_card()
    return card.gpu


class TestGPUISA:
    def test_wide_vector_ops_carry_large_energy(self):
        """32 lanes switching together dwarf the scalar path."""
        v = GPU_ISA.spec("v_fma32").energy
        s = GPU_ISA.spec("s_add").energy
        assert v > 10 * s

    def test_has_nonpipelined_stall_op(self):
        rcp = GPU_ISA.spec("v_rcp32")
        assert rcp.recip_throughput == rcp.latency > 1

    def test_class_coverage(self):
        classes = {s.iclass for s in GPU_ISA.specs}
        assert InstructionClass.SIMD in classes
        assert InstructionClass.MEM in classes
        assert InstructionClass.BRANCH in classes


class TestGPUPDN:
    def test_resonance_calibration(self):
        model = PDNModel(GPU_PDN)
        assert model.measured_resonance_hz(8) == pytest.approx(
            55e6, rel=0.03
        )
        assert model.measured_resonance_hz(1) == pytest.approx(
            90e6, rel=0.03
        )

    def test_gpu_resonates_below_cpu_clusters(self):
        """More die capacitance on the GPU rail -> lower resonance."""
        from repro.pdn.models import CORTEX_A72_PDN

        gpu_f = PDNModel(GPU_PDN).measured_resonance_hz(8)
        a72_f = PDNModel(CORTEX_A72_PDN).measured_resonance_hz(2)
        assert gpu_f < a72_f


class TestGPUCluster:
    def test_spec_shape(self, gpu):
        assert gpu.spec.num_cores == 8
        assert gpu.spec.visibility is NoiseVisibility.NONE
        assert gpu.spec.isa.name == "gpu-simt"

    def test_hilo_loop_reaches_above_resonance(self, gpu):
        """The sweep loop must span past the 1-CU 90 MHz resonance."""
        run = gpu.run(high_low_program(gpu.spec.isa))
        assert run.loop_frequency_hz > 95e6

    def test_methodology_transfers(self, gpu):
        """EM sweep on the GPU finds its resonance -- unchanged API."""
        from repro.core.characterizer import EMCharacterizer
        from repro.core.resonance import ResonanceSweep
        from repro.obs.context import RunContext
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

        char = EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(5)),
            samples=4,
        )
        sweep = ResonanceSweep(char, samples_per_point=3)
        clocks = [1.0e9 - k * 25e6 for k in range(0, 32)]
        result = sweep.run(RunContext(cluster=gpu), clocks_hz=clocks)
        assert result.resonance_hz() == pytest.approx(55e6, abs=6e6)

    def test_cu_power_gating_shifts_resonance(self, gpu):
        from repro.core.characterizer import EMCharacterizer
        from repro.core.resonance import ResonanceSweep
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

        char = EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(6)),
            samples=4,
        )
        sweep = ResonanceSweep(char, samples_per_point=3)
        clocks = [1.0e9 - k * 25e6 for k in range(0, 32)]
        results = sweep.power_gating_study(
            gpu, core_counts=(8, 1), clocks_hz=clocks
        )
        assert results[1].resonance_hz() > results[0].resonance_hz()
