"""Oscilloscope models: the Juno OC-DSO and bench scopes on Kelvin pads.

The OC-DSO is the all-digital on-chip power-supply monitor of the Juno
board (up to 1.6 GHz sampling of the Cortex-A72 rail).  The model
samples the exact periodic rail waveform produced by the PDN solver at
the scope's own rate, applies quantization and front-end noise, and
offers the measurements the paper uses: maximum droop, peak-to-peak
amplitude, and an FFT view for comparison against the spectrum
analyzer (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.pdn.steady_state import PeriodicResponse


@dataclass
class ScopeCapture:
    """A captured record of rail-voltage samples."""

    times_s: np.ndarray
    volts: np.ndarray
    nominal_voltage: float

    @property
    def sample_rate_hz(self) -> float:
        if self.times_s.size < 2:
            raise ValueError("capture too short")
        return 1.0 / float(self.times_s[1] - self.times_s[0])

    def max_droop(self) -> float:
        """Largest dip below nominal, in volts (the GA's OC-DSO metric)."""
        return float(self.nominal_voltage - np.min(self.volts))

    def peak_to_peak(self) -> float:
        return float(np.max(self.volts) - np.min(self.volts))

    def fft(self) -> Tuple[np.ndarray, np.ndarray]:
        """(frequencies_hz, single-sided amplitude) of the AC component."""
        n = self.volts.size
        window = np.hanning(n)
        spectrum = np.fft.rfft((self.volts - np.mean(self.volts)) * window)
        # Amplitude correction for the Hann window's coherent gain (0.5).
        amps = np.abs(spectrum) * 2.0 / (n * 0.5)
        freqs = np.fft.rfftfreq(n, d=1.0 / self.sample_rate_hz)
        return freqs, amps

    def dominant_frequency_hz(
        self, band: Optional[Tuple[float, float]] = None
    ) -> float:
        freqs, amps = self.fft()
        mask = freqs > 0.0
        if band is not None:
            mask &= (freqs >= band[0]) & (freqs <= band[1])
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            raise ValueError("no FFT bins in requested band")
        return float(freqs[idx[np.argmax(amps[idx])]])


@dataclass
class Oscilloscope:
    """Sampling scope with quantization and additive front-end noise.

    Defaults model the OC-DSO: 1.6 GS/s, ~1 mV effective resolution on
    a 400 mV window around nominal.  A bench scope on Kelvin pads uses
    the same model with its own rate and noise figures.
    """

    sample_rate_hz: float = 1.6e9
    resolution_bits: int = 9
    window_v: float = 0.4
    noise_rms_v: float = 0.5e-3
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(1)
    )

    def capture(
        self,
        response: PeriodicResponse,
        duration_s: float = 2.0e-6,
    ) -> ScopeCapture:
        """Sample the periodic rail waveform for ``duration_s``.

        The periodic response is evaluated exactly at scope sample
        instants by summing its harmonics (Fourier interpolation), so
        scope and PDN rates need not be commensurate.
        """
        n_samples = max(16, int(round(duration_s * self.sample_rate_hz)))
        t = np.arange(n_samples) / self.sample_rate_hz

        freqs = response.harmonic_frequencies_hz
        amps = response.die_voltage_harmonics
        # v(t) = V_nom + Re(DC term) + sum_k Re(A_k e^{j 2 pi f_k t})
        v = np.full(n_samples, response.nominal_voltage + amps[0].real)
        # Only keep harmonics the scope front-end can pass (Nyquist).
        passband = (freqs > 0.0) & (freqs < 0.5 * self.sample_rate_hz)
        for f, a in zip(freqs[passband], amps[passband]):
            v += np.real(a * np.exp(2j * np.pi * f * t))

        v += self.noise_rms_v * self.rng.standard_normal(n_samples)
        lsb = self.window_v / (2**self.resolution_bits)
        center = response.nominal_voltage
        v = center + np.round((v - center) / lsb) * lsb
        return ScopeCapture(
            times_s=t, volts=v, nominal_voltage=response.nominal_voltage
        )

    def measure_max_droop(
        self, response: PeriodicResponse, duration_s: float = 2.0e-6
    ) -> float:
        return self.capture(response, duration_s).max_droop()

    def measure_peak_to_peak(
        self, response: PeriodicResponse, duration_s: float = 2.0e-6
    ) -> float:
        return self.capture(response, duration_s).peak_to_peak()
