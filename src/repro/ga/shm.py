"""Compact ndarray payloads for the persistent GA workers.

The persistent worker runtime (:mod:`repro.ga.workers`) moves two
kinds of data across the process boundary every generation: genome
batches (parent -> worker) and fitness-evaluation matrices (worker ->
parent).  Pickling whole ``LoopProgram``/``FitnessEvaluation`` object
graphs per dispatch is what made the original shard model slower than
serial, so this module provides the compact alternative:

* :class:`ProgramEncoder` / :class:`ProgramDecoder` turn a program
  batch into one ``int64`` instruction matrix (columns: spec index,
  dest, address, source registers) plus a small header.  The
  :class:`~repro.cpu.isa.InstructionSet` itself is pickled **once per
  distinct ISA** on the parent side and cached by token on the worker
  side, so steady-state dispatch ships only the matrix and a tuple of
  names.
* :func:`encode_evaluations` / :func:`decode_evaluations` pack a list
  of :class:`~repro.ga.fitness.FitnessEvaluation` results into one
  ``(N, 6) float64`` matrix.
* :func:`pack_arrays` / :func:`unpack_arrays` move the ndarrays either
  through a :class:`multiprocessing.shared_memory.SharedMemory` block
  (zero-copy on the write side, one copy on the read side) or inline
  through the queue when the payload is small, shared memory is
  disabled (``REPRO_GA_SHM=0``) or block creation fails.

Every encoder has a pickle fallback: batches whose instructions are
not drawn from their ISA's spec table, or evaluations that are not
plain-float ``FitnessEvaluation`` instances, round-trip through
ordinary pickle so exotic fitness callables keep working -- the codec
is an optimization, never a compatibility constraint.  Decoded
programs compare genome-equal to the originals and evaluations are
bit-identical (float64 in, float64 out), which is what keeps the
``workers=N == workers=1`` contract intact over this transport.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised via the fallback flag in tests
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython
    _shared_memory = None

#: Payloads smaller than this travel inline through the queue; the
#: fixed cost of creating + attaching a block only pays off for the
#: multi-kilobyte genome matrices.
DEFAULT_SHM_MIN_BYTES = 4096


def shm_enabled_by_env() -> bool:
    """Whether ``REPRO_GA_SHM`` permits shared-memory payloads."""
    return os.environ.get("REPRO_GA_SHM", "1").lower() not in (
        "0", "false", "no", "off",
    )


# ---------------------------------------------------------------------------
# ndarray bundles: shared-memory block or inline fallback
# ---------------------------------------------------------------------------
@dataclass
class ArrayBundle:
    """Picklable descriptor of an ndarray batch in transit.

    ``via == "shm"`` carries only the block name plus per-array shape,
    dtype and byte-offset metadata; ``via == "inline"`` carries the
    arrays themselves (small payloads, disabled or failed shared
    memory).
    """

    via: str
    shm_name: Optional[str] = None
    shapes: Tuple[Tuple[int, ...], ...] = ()
    dtypes: Tuple[str, ...] = ()
    offsets: Tuple[int, ...] = ()
    inline: Optional[List[np.ndarray]] = None


def pack_arrays(
    arrays: Sequence[np.ndarray],
    use_shm: bool,
    min_bytes: int = DEFAULT_SHM_MIN_BYTES,
) -> Tuple[ArrayBundle, Optional[object]]:
    """Bundle ``arrays`` for the queue; returns ``(bundle, owner)``.

    ``owner`` is the :class:`SharedMemory` block backing an ``"shm"``
    bundle -- the *creating* side must keep it alive until the consumer
    has copied the data out, then call :func:`release_block`.  Inline
    bundles have no owner (``None``).
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    total = sum(a.nbytes for a in arrays)
    if (
        use_shm
        and _shared_memory is not None
        and total >= min_bytes
    ):
        try:
            block = _shared_memory.SharedMemory(create=True, size=total)
        except OSError:
            block = None  # /dev/shm unavailable or full: go inline.
        if block is not None:
            offsets = []
            cursor = 0
            for a in arrays:
                offsets.append(cursor)
                view = np.ndarray(
                    a.shape, dtype=a.dtype,
                    buffer=block.buf, offset=cursor,
                )
                view[...] = a
                cursor += a.nbytes
            return (
                ArrayBundle(
                    via="shm",
                    shm_name=block.name,
                    shapes=tuple(a.shape for a in arrays),
                    dtypes=tuple(a.dtype.str for a in arrays),
                    offsets=tuple(offsets),
                ),
                block,
            )
    return ArrayBundle(via="inline", inline=arrays), None


def unpack_arrays(bundle: ArrayBundle) -> List[np.ndarray]:
    """Materialize the arrays of ``bundle`` (copying out of shm).

    The returned arrays own their memory: a shared-memory block is
    attached, copied and closed within this call, so the sender may
    release it as soon as the consumer acknowledges the message.
    """
    if bundle.via == "inline":
        return list(bundle.inline or [])
    if _shared_memory is None:  # pragma: no cover - defensive
        raise RuntimeError("shared_memory unavailable for shm bundle")
    block = _shared_memory.SharedMemory(name=bundle.shm_name)
    # CPython < 3.13 registers even attach-only blocks with the
    # resource tracker, which then warns at exit about names the
    # *creator* already unlinked (bpo-39959).  This side never owns the
    # block, so take it back out of the tracker's ledger.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(block, "_name", bundle.shm_name), "shared_memory"
        )
    except (ImportError, AttributeError):  # pragma: no cover
        pass
    try:
        return [
            np.ndarray(
                shape, dtype=np.dtype(dtype),
                buffer=block.buf, offset=offset,
            ).copy()
            for shape, dtype, offset in zip(
                bundle.shapes, bundle.dtypes, bundle.offsets
            )
        ]
    finally:
        block.close()


def release_block(block: Optional[object]) -> None:
    """Close and unlink a block created by :func:`pack_arrays`."""
    if block is None:
        return
    block.close()
    try:
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# ---------------------------------------------------------------------------
# program batches <-> instruction matrices
# ---------------------------------------------------------------------------
#: Fixed columns of the instruction matrix before the source block.
_SPEC, _DEST, _ADDR, _NSRC = 0, 1, 2, 3
_FIXED_COLS = 4


class ProgramEncoder:
    """Parent-side program->matrix codec with an ISA pickle cache.

    Each distinct :class:`InstructionSet` is pickled once and assigned
    a small integer token; shard headers reference programs by token
    and carry the pickled bytes so a worker (including a freshly
    respawned one) can always resolve them, while a warm worker skips
    the unpickle via its own token cache.
    """

    def __init__(self) -> None:
        # Identity registry with strong references (never id()-keyed:
        # CPython reuses addresses after GC -- audit rule R3).
        self._isas: List[Tuple[object, int, bytes]] = []
        self._spec_index: Dict[int, Dict[object, int]] = {}

    def _isa_token(self, isa: object) -> Tuple[int, bytes]:
        for obj, token, blob in self._isas:
            if obj is isa:
                return token, blob
        token = len(self._isas)
        blob = pickle.dumps(isa)
        self._isas.append((isa, token, blob))
        self._spec_index[token] = {
            spec: i for i, spec in enumerate(isa.specs)
        }
        return token, blob

    def encode(
        self, programs: Sequence
    ) -> Tuple[dict, List[np.ndarray]]:
        """``(header, arrays)`` for a batch of ``LoopProgram``s.

        Falls back to ``{"kind": "pickle"}`` when any instruction's
        spec is not in its ISA's table (hand-built spec pools).
        """
        rows = []
        tokens = []
        lengths = []
        names = []
        blobs: Dict[int, bytes] = {}
        max_src = 1
        for program in programs:
            token, blob = self._isa_token(program.isa)
            index = self._spec_index[token]
            body_rows = []
            for instr in program.body:
                spec_idx = index.get(instr.spec)
                if spec_idx is None:
                    return (
                        {
                            "kind": "pickle",
                            "blob": pickle.dumps(list(programs)),
                        },
                        [],
                    )
                body_rows.append((spec_idx, instr))
                max_src = max(max_src, len(instr.sources))
            rows.append(body_rows)
            tokens.append(token)
            lengths.append(len(program.body))
            names.append(program.name)
            blobs[token] = blob
        matrix = np.full(
            (sum(lengths), _FIXED_COLS + max_src), -1, dtype=np.int64
        )
        cursor = 0
        for body_rows in rows:
            for spec_idx, instr in body_rows:
                row = matrix[cursor]
                row[_SPEC] = spec_idx
                if instr.dest is not None:
                    row[_DEST] = instr.dest
                if instr.address is not None:
                    row[_ADDR] = instr.address
                row[_NSRC] = len(instr.sources)
                for k, src in enumerate(instr.sources):
                    row[_FIXED_COLS + k] = src
                cursor += 1
        header = {
            "kind": "arrays",
            "names": tuple(names),
            "lengths": tuple(lengths),
            "isa_tokens": tuple(tokens),
            "isa_blobs": blobs,
        }
        return header, [matrix]


class ProgramDecoder:
    """Worker-side matrix->program codec; caches ISAs by token."""

    def __init__(self) -> None:
        self._isas: Dict[int, object] = {}

    def decode(
        self, header: dict, arrays: Sequence[np.ndarray]
    ) -> List:
        from repro.cpu.isa import Instruction
        from repro.cpu.program import LoopProgram

        if header["kind"] == "pickle":
            return pickle.loads(header["blob"])
        for token, blob in header["isa_blobs"].items():
            if token not in self._isas:
                self._isas[token] = pickle.loads(blob)
        (matrix,) = arrays
        programs = []
        cursor = 0
        for name, length, token in zip(
            header["names"], header["lengths"], header["isa_tokens"]
        ):
            isa = self._isas[token]
            body = []
            for row in matrix[cursor:cursor + length]:
                spec = isa.specs[int(row[_SPEC])]
                n_src = int(row[_NSRC])
                body.append(
                    Instruction(
                        spec=spec,
                        dest=(
                            int(row[_DEST]) if row[_DEST] >= 0 else None
                        ),
                        sources=tuple(
                            int(row[_FIXED_COLS + k])
                            for k in range(n_src)
                        ),
                        address=(
                            int(row[_ADDR]) if row[_ADDR] >= 0 else None
                        ),
                    )
                )
            cursor += length
            programs.append(
                LoopProgram(isa=isa, body=tuple(body), name=name)
            )
        return programs


# ---------------------------------------------------------------------------
# evaluation batches <-> float64 matrices
# ---------------------------------------------------------------------------
#: FitnessEvaluation field order of the result matrix columns.
EVAL_FIELDS = (
    "score",
    "dominant_frequency_hz",
    "max_droop_v",
    "peak_to_peak_v",
    "ipc",
    "loop_frequency_hz",
)


def encode_evaluations(
    evaluations: Sequence,
) -> Tuple[dict, List[np.ndarray]]:
    """``(header, arrays)`` for a list of fitness evaluations.

    Only exact :class:`FitnessEvaluation` instances whose fields are
    all plain ``float``s use the matrix form (guaranteeing the decoded
    values are type- and bit-identical); anything else -- subclasses,
    integer scores, custom result objects -- pickles through unchanged.
    """
    from repro.ga.fitness import FitnessEvaluation

    packable = all(
        type(e) is FitnessEvaluation
        and all(
            type(getattr(e, f)) is float for f in EVAL_FIELDS
        )
        for e in evaluations
    )
    if not packable:
        return (
            {"kind": "pickle", "blob": pickle.dumps(list(evaluations))},
            [],
        )
    matrix = np.array(
        [[getattr(e, f) for f in EVAL_FIELDS] for e in evaluations],
        dtype=np.float64,
    ).reshape(len(evaluations), len(EVAL_FIELDS))
    return {"kind": "arrays", "count": len(evaluations)}, [matrix]


def decode_evaluations(
    header: dict, arrays: Sequence[np.ndarray]
) -> List:
    from repro.ga.fitness import FitnessEvaluation

    if header["kind"] == "pickle":
        return pickle.loads(header["blob"])
    (matrix,) = arrays
    return [
        FitnessEvaluation(
            **{f: float(row[i]) for i, f in enumerate(EVAL_FIELDS)}
        )
        for row in matrix
    ]
