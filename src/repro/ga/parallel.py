"""Parallel fitness evaluation for the GA engine.

A generation's unseen genomes are independent measurements, so they can
be fanned out across worker processes.  The dispatch model is:

1. the engine dedupes the generation by genome against its memo cache,
2. unseen programs are split into one contiguous shard per worker and
   submitted to a :class:`ProcessPoolExecutor` (created once per run
   and reused across generations) -- one task per shard, so each
   worker pushes its whole shard through the measurement chain as a
   single batched call, and
3. per-shard results are flattened back in submission order.

Ordering is deterministic: ``executor.map`` returns shard results in
the order shards were submitted and each shard preserves item order,
so a *pure* fitness function produces bit-identical ``GAResult``
histories at any worker count (the ``workers=4 == workers=1``
determinism test).  A fitness that mutates hidden state per call
(e.g. a spectrum analyzer advancing its RNG) keeps that state
per-process under parallel dispatch, so its scores are only
reproducible serially -- leave ``workers=1`` for those.

Fitness callables must be picklable to cross the process boundary
(plain functions, dataclass instances such as
:class:`repro.ga.fitness.ClusterFitness` -- not closures).  An
unpicklable fitness degrades gracefully to serial evaluation.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.cpu.program import LoopProgram
from repro.ga.fitness import FitnessEvaluation

# Per-worker fitness instance, installed once by the pool initializer so
# each task ships only its (small) LoopProgram shard, not the whole
# measurement chain.
_WORKER_FITNESS: Optional[Callable] = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_FITNESS
    _WORKER_FITNESS = pickle.loads(payload)


def _evaluate_with(
    fitness: Callable, programs: Sequence[LoopProgram]
) -> List[FitnessEvaluation]:
    """Evaluate in order, batched when the fitness supports it."""
    batch = getattr(fitness, "evaluate_batch", None)
    if batch is not None:
        return list(batch(programs))
    return [fitness(p) for p in programs]


def _evaluate_in_worker(program: LoopProgram) -> FitnessEvaluation:
    return _WORKER_FITNESS(program)


def _evaluate_shard_in_worker(
    programs: Sequence[LoopProgram],
) -> List[FitnessEvaluation]:
    return _evaluate_with(_WORKER_FITNESS, programs)


def shard(
    programs: Sequence[LoopProgram], workers: int
) -> List[List[LoopProgram]]:
    """Split ``programs`` into at most ``workers`` contiguous shards.

    Shard sizes differ by at most one, with the larger shards first;
    concatenating the shards reproduces the input order exactly.
    """
    count = min(workers, len(programs))
    base, extra = divmod(len(programs), count)
    shards = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        shards.append(list(programs[start:start + size]))
        start += size
    return shards


class ParallelEvaluator:
    """Evaluates batches of programs across a process pool.

    Parameters
    ----------
    fitness:
        The fitness callable.  If it cannot be pickled the evaluator
        silently evaluates serially in-process (``parallel`` is False).
    workers:
        Pool size; 1 means serial.
    """

    def __init__(self, fitness: Callable, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._fitness = fitness
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._payload: Optional[bytes] = None
        if workers > 1:
            try:
                self._payload = pickle.dumps(fitness)
            except Exception:
                self._payload = None

    @property
    def parallel(self) -> bool:
        """Whether batches actually fan out to worker processes."""
        return self._payload is not None

    def evaluate(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        """Evaluate ``programs``, returning results in input order."""
        if not self.parallel or len(programs) <= 1:
            return _evaluate_with(self._fitness, programs)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        results: List[FitnessEvaluation] = []
        for shard_results in self._pool.map(
            _evaluate_shard_in_worker, shard(programs, self.workers)
        ):
            results.extend(shard_results)
        return results

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
