"""Unit tests for heterogeneous (per-core mixed) execution."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.current import CurrentModel
from repro.cpu.multicore import (
    CoreModel,
    execute_mixed_on_cluster,
    execute_on_cluster,
)
from repro.cpu.pipeline import InOrderPipeline
from repro.cpu.program import program_from_mnemonics


@pytest.fixture
def core():
    return CoreModel(
        pipeline=InOrderPipeline(width=2),
        current_model=CurrentModel(),
        clock_hz=1.0e9,
    )


@pytest.fixture
def hilo():
    return program_from_mnemonics(ARM_ISA, ["add"] * 8 + ["sdiv"])


@pytest.fixture
def fp_loop():
    return program_from_mnemonics(ARM_ISA, ["fadd"] * 6 + ["fsqrt"])


class TestMixedExecution:
    def test_rejects_empty_program_list(self, core):
        with pytest.raises(ValueError):
            execute_mixed_on_cluster(core, [])

    def test_period_is_lcm_of_loops(self, core, hilo, fp_loop):
        mixed = execute_mixed_on_cluster(core, [hilo, fp_loop])
        periods = [s.cycles for s in mixed.schedules]
        lcm = np.lcm.reduce(periods)
        assert mixed.period_cycles == lcm

    def test_period_cap(self, core, hilo, fp_loop):
        mixed = execute_mixed_on_cluster(
            core, [hilo, fp_loop], period_cap_cycles=16
        )
        assert mixed.period_cycles <= 16

    def test_identical_mix_matches_homogeneous(self, core, hilo):
        """Two copies of the same loop == the aligned homogeneous path."""
        mixed = execute_mixed_on_cluster(
            core, [hilo, hilo], uncore_current_a=0.1
        )
        homo = execute_on_cluster(
            core, hilo, active_cores=2, uncore_current_a=0.1
        )
        assert mixed.period_cycles == homo.load_current.size
        assert np.allclose(mixed.load_current, homo.load_current)

    def test_mean_current_is_sum_of_cores(self, core, hilo, fp_loop):
        mixed = execute_mixed_on_cluster(
            core, [hilo, fp_loop], uncore_current_a=0.2
        )
        expected = (
            core.current_trace(mixed.schedules[0]).mean()
            + core.current_trace(mixed.schedules[1]).mean()
            + 0.2
        )
        assert mixed.load_current.mean() == pytest.approx(
            expected, rel=1e-9
        )

    def test_per_core_loop_frequencies(self, core, hilo, fp_loop):
        mixed = execute_mixed_on_cluster(core, [hilo, fp_loop])
        freqs = mixed.per_core_loop_frequencies_hz()
        assert len(freqs) == 2
        assert freqs[0] != freqs[1]


class TestClusterRunMixed:
    def test_virus_plus_background(self, a72, hilo):
        """A virus on one core with a quiet loop on the other still
        rings the rail, but less than two aligned virus copies."""
        a72.set_clock(540e6)  # hilo at the 67.5 MHz resonance
        quiet = program_from_mnemonics(a72.spec.isa, ["add"] * 9)
        both_virus = a72.run_mixed([hilo, hilo])
        one_virus = a72.run_mixed([hilo, quiet])
        assert both_virus.peak_to_peak > one_virus.peak_to_peak
        assert one_virus.peak_to_peak > 0.005

    def test_program_count_bounds(self, a72, hilo):
        with pytest.raises(ValueError):
            a72.run_mixed([])
        with pytest.raises(ValueError):
            a72.run_mixed([hilo] * 3)  # only 2 cores

    def test_single_program_matches_single_core_run(self, a72, hilo):
        mixed = a72.run_mixed([hilo])
        direct = a72.run(hilo, active_cores=1)
        assert mixed.max_droop == pytest.approx(
            direct.max_droop, rel=1e-9
        )
