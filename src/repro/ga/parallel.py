"""Parallel fitness evaluation for the GA engine, with resilience.

A generation's unseen genomes are independent measurements, so they can
be fanned out across worker processes.  The dispatch model is:

1. the engine dedupes the generation by genome against its memo cache,
2. unseen programs are split into one contiguous shard per worker and
   submitted to a :class:`ProcessPoolExecutor` (created once per run
   and reused across generations) -- one task per shard, so each
   worker pushes its whole shard through the measurement chain as a
   single batched call, and
3. per-shard results are flattened back in submission order.

Ordering is deterministic: shard results are collected in the order
shards were submitted and each shard preserves item order, so a *pure*
fitness function produces bit-identical ``GAResult`` histories at any
worker count (the ``workers=4 == workers=1`` determinism test).  A
fitness that mutates hidden state per call (e.g. a spectrum analyzer
advancing its RNG) keeps that state per-process under parallel
dispatch, so its scores are only reproducible serially -- leave
``workers=1`` for those.

Fitness callables must be picklable to cross the process boundary
(plain functions, dataclass instances such as
:class:`repro.ga.fitness.ClusterFitness` -- not closures).  An
unpicklable fitness degrades gracefully to serial evaluation.

Resilience (see :mod:`repro.faults`): with a
:class:`~repro.faults.RetryPolicy` attached, transient faults raised
inside batch evaluation are retried with the fitness's RNG state
rewound (``fitness_state`` protocol), so a retried-to-success run is
bit-identical to a fault-free one.  Crashed workers
(:class:`~repro.faults.WorkerCrash`, ``BrokenProcessPool``, dispatch
timeouts) get their shards re-dispatched; after
``max_pool_restarts`` crash events the evaluator emits
``degraded_to_serial`` and finishes the campaign in-process.  A genome
that keeps failing after per-item retries is *quarantined*: it scores
:data:`PENALTY_SCORE` (emitting ``genome_quarantined``) so the GA
keeps advancing instead of dying with the instrument.
"""

from __future__ import annotations

import pickle
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.cpu.program import LoopProgram
from repro.faults.errors import (
    RETRYABLE_FAULTS,
    StageTimeout,
    WorkerCrash,
)
from repro.faults.plan import NULL_INJECTOR, FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.ga.fitness import FitnessEvaluation
from repro.obs.events import NULL_LOG, EventLog

#: Score assigned to quarantined genomes.  Real fitness metrics
#: (EM amplitude in watts, droop in volts) are strictly positive, so
#: zero ranks a quarantined individual below every healthy one while
#: keeping generation means finite.
PENALTY_SCORE = 0.0

#: Crash events (WorkerCrash / broken pool / dispatch timeout) after
#: which the evaluator stops re-dispatching and finishes serially.
DEFAULT_MAX_POOL_RESTARTS = 3

# Per-worker fitness/injector, installed once by the pool initializer
# so each task ships only its (small) LoopProgram shard, not the whole
# measurement chain.
_WORKER_FITNESS: Optional[Callable] = None
_WORKER_INJECTOR: FaultInjector = NULL_INJECTOR
_WORKER_POLICY: Optional[RetryPolicy] = None


def penalty_evaluation() -> FitnessEvaluation:
    """The placeholder evaluation a quarantined genome receives."""
    return FitnessEvaluation(
        score=PENALTY_SCORE,
        dominant_frequency_hz=0.0,
        max_droop_v=0.0,
        peak_to_peak_v=0.0,
        ipc=0.0,
        loop_frequency_hz=0.0,
    )


def _init_worker(payload: bytes) -> None:
    global _WORKER_FITNESS, _WORKER_INJECTOR, _WORKER_POLICY
    _WORKER_FITNESS, _WORKER_INJECTOR, _WORKER_POLICY = pickle.loads(
        payload
    )


def _evaluate_with(
    fitness: Callable, programs: Sequence[LoopProgram]
) -> List[FitnessEvaluation]:
    """Evaluate in order, batched when the fitness supports it."""
    batch = getattr(fitness, "evaluate_batch", None)
    if batch is not None:
        return list(batch(programs))
    return [fitness(p) for p in programs]


def _state_hooks(
    fitness: Callable,
) -> Tuple[Optional[Callable], Optional[Callable]]:
    """(capture, restore) fitness-state hooks, if the fitness has them."""
    return (
        getattr(fitness, "fitness_state", None),
        getattr(fitness, "restore_fitness_state", None),
    )


def _evaluate_in_worker(program: LoopProgram) -> FitnessEvaluation:
    return _WORKER_FITNESS(program)


def _evaluate_shard_in_worker(
    programs: Sequence[LoopProgram],
) -> List[FitnessEvaluation]:
    """One shard, inside a worker: fault site + local transient retry.

    Transient chain faults are retried here with the worker-local
    fitness state rewound; anything that survives the worker's budget
    (including :class:`WorkerCrash`) propagates to the parent, which
    re-dispatches or salvages the shard.  Worker-side retries cannot
    reach the parent's event log, so they are silent; the parent-side
    serial path is the one the chaos suite asserts events from.
    """
    _WORKER_INJECTOR.visit("worker.shard")
    if _WORKER_POLICY is None:
        return _evaluate_with(_WORKER_FITNESS, programs)
    capture, restore = _state_hooks(_WORKER_FITNESS)
    return call_with_retry(
        lambda: _evaluate_with(_WORKER_FITNESS, programs),
        _WORKER_POLICY,
        scope="worker-shard",
        capture_state=capture,
        restore_state=restore,
    )


def shard(
    programs: Sequence[LoopProgram], workers: int
) -> List[List[LoopProgram]]:
    """Split ``programs`` into at most ``workers`` contiguous shards.

    Shard sizes differ by at most one, with the larger shards first;
    concatenating the shards reproduces the input order exactly.
    """
    count = min(workers, len(programs))
    base, extra = divmod(len(programs), count)
    shards = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        shards.append(list(programs[start:start + size]))
        start += size
    return shards


class ParallelEvaluator:
    """Evaluates batches of programs across a process pool.

    Parameters
    ----------
    fitness:
        The fitness callable.  If it cannot be pickled the evaluator
        silently evaluates serially in-process (``parallel`` is False).
    workers:
        Pool size; 1 means serial.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy`.  Without one,
        transient faults propagate to the caller unchanged (the
        historical behavior); with one, batches are retried, failing
        shards re-dispatched and persistent failures quarantined.
    fault_injector:
        Optional armed :class:`~repro.faults.FaultInjector`, shipped to
        workers alongside the fitness (site ``worker.shard``).
    event_log:
        Destination for ``fault_injected`` / ``retry_attempt`` /
        ``degraded_to_serial`` / ``genome_quarantined`` events.
    max_pool_restarts:
        Crash events tolerated before degrading to serial execution.
    """

    def __init__(
        self,
        fitness: Callable,
        workers: int,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        event_log: EventLog = NULL_LOG,
        max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        self._fitness = fitness
        self.workers = workers
        self._policy = retry_policy
        self._injector = (
            fault_injector if fault_injector is not None else NULL_INJECTOR
        )
        self._log = event_log
        self._max_pool_restarts = max_pool_restarts
        self._pool: Optional[ProcessPoolExecutor] = None
        self._payload: Optional[bytes] = None
        #: Crash events seen so far (worker deaths, broken pools,
        #: dispatch timeouts).
        self.pool_crashes = 0
        #: Whether the evaluator has permanently fallen back to serial.
        self.degraded = False
        #: Genomes quarantined with a penalty score this run.
        self.quarantined: Set[Tuple] = set()
        if workers > 1:
            # Only pickling failures mean "fall back to serial";
            # anything else (KeyboardInterrupt, injected FaultErrors,
            # AuditViolations) must propagate with its traceback.
            try:
                self._payload = pickle.dumps(
                    (fitness, self._injector, retry_policy)
                )
            except (pickle.PicklingError, TypeError, AttributeError):
                self._payload = None

    @property
    def parallel(self) -> bool:
        """Whether batches actually fan out to worker processes."""
        return self._payload is not None and not self.degraded

    def evaluate(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        """Evaluate ``programs``, returning results in input order."""
        if not self.parallel or len(programs) <= 1:
            return self._evaluate_serial(programs)
        return self._evaluate_parallel(programs)

    # ------------------------------------------------------------------
    # serial path (workers=1, unpicklable fitness, or degraded)
    # ------------------------------------------------------------------
    def _evaluate_serial(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        if self._policy is None:
            return _evaluate_with(self._fitness, programs)
        capture, restore = _state_hooks(self._fitness)
        try:
            return call_with_retry(
                lambda: _evaluate_with(self._fitness, programs),
                self._policy,
                event_log=self._log,
                scope="batch",
                capture_state=capture,
                restore_state=restore,
            )
        except RETRYABLE_FAULTS:
            # The whole batch kept failing; salvage item by item so one
            # poisoned genome cannot take the generation down with it.
            return self._salvage_items(programs)

    def _salvage_items(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        capture, restore = _state_hooks(self._fitness)
        results: List[FitnessEvaluation] = []
        for program in programs:
            try:
                results.append(
                    call_with_retry(
                        lambda p=program: _evaluate_with(
                            self._fitness, [p]
                        )[0],
                        self._policy,
                        event_log=self._log,
                        scope="item",
                        capture_state=capture,
                        restore_state=restore,
                    )
                )
            except RETRYABLE_FAULTS as exc:
                genome = program.genome()
                self.quarantined.add(genome)
                self._log.emit(
                    "genome_quarantined",
                    program=program.name,
                    site=getattr(exc, "site", None),
                    kind=getattr(exc, "kind", type(exc).__name__),
                    retries=self._policy.max_retries,
                    penalty_score=PENALTY_SCORE,
                )
                results.append(penalty_evaluation())
        return results

    # ------------------------------------------------------------------
    # parallel path: shard dispatch with crash recovery
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _record_crash(self, shard_index: int, exc: BaseException) -> None:
        self.pool_crashes += 1
        if isinstance(exc, WorkerCrash):
            self._log.emit(
                "fault_injected",
                site=exc.site,
                kind=exc.kind,
                scope="worker-shard",
                error=str(exc),
            )
        self._log.emit(
            "worker_crash",
            shard=shard_index,
            crashes=self.pool_crashes,
            max_pool_restarts=self._max_pool_restarts,
            error=str(exc) or type(exc).__name__,
        )

    def _evaluate_parallel(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        shards = shard(programs, self.workers)
        results: List[Optional[List[FitnessEvaluation]]] = (
            [None] * len(shards)
        )
        remaining = list(range(len(shards)))
        retry_counts = [0] * len(shards)
        timeout = self._policy.timeout_s if self._policy else None
        while remaining:
            if self.degraded:
                for i in remaining:
                    results[i] = self._evaluate_serial(shards[i])
                remaining = []
                break
            pool = self._ensure_pool()
            futures = [
                (i, pool.submit(_evaluate_shard_in_worker, shards[i]))
                for i in remaining
            ]
            next_remaining: List[int] = []
            pool_broken = False
            for i, future in futures:
                if pool_broken:
                    # The pool died while earlier futures were being
                    # collected; everything still pending is lost.
                    next_remaining.append(i)
                    continue
                try:
                    results[i] = future.result(timeout=timeout)
                except (WorkerCrash, BrokenProcessPool) as exc:
                    self._record_crash(i, exc)
                    next_remaining.append(i)
                    if isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                except FuturesTimeoutError:
                    self._record_crash(
                        i,
                        StageTimeout(
                            f"shard {i} exceeded {timeout}s dispatch "
                            "budget",
                            site="worker.shard",
                        ),
                    )
                    next_remaining.append(i)
                    # The hung task may still be holding its worker;
                    # recycle the whole pool.
                    pool_broken = True
                except RETRYABLE_FAULTS as exc:
                    # A transient fault survived the worker's local
                    # retries (or no policy is attached).
                    if self._policy is None:
                        raise
                    retry_counts[i] += 1
                    if retry_counts[i] <= self._policy.max_retries:
                        self._log.emit(
                            "retry_attempt",
                            scope="shard",
                            attempt=retry_counts[i],
                            max_retries=self._policy.max_retries,
                            site=getattr(exc, "site", None),
                            kind=getattr(exc, "kind", None),
                            delay_s=0.0,
                        )
                        next_remaining.append(i)
                    else:
                        results[i] = self._salvage_items(shards[i])
            if pool_broken:
                self._teardown_pool()
            if (
                next_remaining
                and self.pool_crashes > self._max_pool_restarts
            ):
                self.degraded = True
                self._teardown_pool()
                self._log.emit(
                    "degraded_to_serial",
                    crashes=self.pool_crashes,
                    max_pool_restarts=self._max_pool_restarts,
                    pending_shards=len(next_remaining),
                )
            remaining = next_remaining
        flattened: List[FitnessEvaluation] = []
        for shard_results in results:
            flattened.extend(shard_results)
        return flattened

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
