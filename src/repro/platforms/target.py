"""Workstation/target orchestration (Section 3.2).

In the paper, the GA runs on a workstation; each individual's source is
shipped to the target machine over SSH, compiled and executed there,
measured from the workstation through the instrument, and finally
killed.  This module reproduces that control flow against the simulated
platform so the framework structure survives a swap to real hardware:
``Workstation.evaluate`` performs exactly the send -> compile -> run ->
measure -> kill sequence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cpu.program import LoopProgram
from repro.platforms.base import Cluster, ClusterRun


class TargetError(Exception):
    """Compilation or execution failure on the target machine."""


@dataclass
class CompiledBinary:
    """Handle to a compiled individual on the target."""

    binary_id: int
    program: LoopProgram


class SimulatedTarget:
    """The device under test's software side: compile, run, kill.

    ``run`` starts steady-state execution of the binary's loop on the
    given cluster; the 'process' stays conceptually running until
    ``kill`` -- measurements sample the steady state in between, which
    is how the spectrum analyzer sees a stable line spectrum.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._ids = itertools.count(1)
        self._running: Dict[int, ClusterRun] = {}

    def compile(self, program: LoopProgram) -> CompiledBinary:
        """'Compile' the individual: validate it against the target ISA."""
        if program.isa.name.split("-")[0] != (
            self.cluster.spec.isa.name.split("-")[0]
        ):
            raise TargetError(
                f"program targets {program.isa.name}, cluster runs "
                f"{self.cluster.spec.isa.name}"
            )
        return CompiledBinary(binary_id=next(self._ids), program=program)

    def run(
        self, binary: CompiledBinary, active_cores: Optional[int] = None
    ) -> ClusterRun:
        """Launch the binary; returns the steady-state execution."""
        run = self.cluster.run(binary.program, active_cores=active_cores)
        self._running[binary.binary_id] = run
        return run

    def kill(self, binary: CompiledBinary) -> None:
        """Terminate the binary's execution."""
        self._running.pop(binary.binary_id, None)

    @property
    def running_count(self) -> int:
        return len(self._running)


class MeasurementError(Exception):
    """Transient instrument/transport failure during a measurement."""


@dataclass
class Workstation:
    """The optimization host driving a target and an instrument.

    Long GA runs on real hardware hit transient failures -- an SSH
    timeout, a GPIB hiccup -- so measurement is retried up to
    ``retries`` times (each retry restarts the binary: the measurement
    must observe a running steady state).  Only
    :class:`MeasurementError` is retried; programming errors propagate.
    """

    target: SimulatedTarget
    measure: Callable[[ClusterRun], float]
    log: Optional[Callable[[str], None]] = None
    retries: int = 2

    def evaluate(
        self, program: LoopProgram, active_cores: Optional[int] = None
    ) -> float:
        """Full remote-evaluation sequence for one individual."""
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            binary = self.target.compile(program)
            run = self.target.run(binary, active_cores=active_cores)
            try:
                score = self.measure(run)
            except MeasurementError as exc:
                last_error = exc
                if self.log is not None:
                    self.log(
                        f"{program.name}: measurement failed "
                        f"(attempt {attempt + 1}): {exc}"
                    )
                continue
            finally:
                self.target.kill(binary)
            if self.log is not None:
                self.log(f"{program.name}: score={score:.4g}")
            return score
        raise MeasurementError(
            f"measurement failed after {self.retries + 1} attempts"
        ) from last_error
