"""Property-based invariants of the batched measurement chain.

Two contracts the batch-first refactor must keep under *arbitrary*
operating points, not just the fixtures the equivalence shims pin:

- batch == sequential: pushing N items through one chain call yields
  bitwise the same amplitudes (and RNG stream consumption) as N
  one-item calls against an identically seeded receive chain;
- permutation equivariance of the deterministic outputs: reordering a
  request permutes the response-derived results and nothing else.
  (The *noisy* amplitude is deliberately not equivariant -- analyzer
  noise draws are positional by design, matching serial hardware.)
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chain import ChainItem, ChainRequest, OperatingPoint
from repro.core.characterizer import EMCharacterizer
from repro.cpu.program import random_program
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.platforms.juno import make_juno_board

# Module-local board: the hypothesis examples share its solver caches,
# but every test resets the mutable cluster state via OperatingPoint
# overrides only (the cluster itself is never mutated).
_BOARD = make_juno_board()
_CLUSTER = _BOARD.a53
_CLOCKS = list(_CLUSTER.spec.allowed_clocks_hz())

seeds = st.integers(min_value=0, max_value=10_000)
counts = st.integers(min_value=1, max_value=4)
# Stay inside repro.platforms.base.validate_voltage's [0.4, 1.6] V.
voltages = st.floats(min_value=0.6, max_value=1.2, allow_nan=False)


def _characterizer(seed=1234):
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=3,
    )


def _items(seed, count, voltage):
    rng = np.random.default_rng(seed)
    return [
        ChainItem(
            program=random_program(
                _CLUSTER.spec.isa, int(rng.integers(3, 12)), rng,
                name=f"p{i}",
            ),
            operating_point=OperatingPoint(
                clock_hz=_CLOCKS[int(rng.integers(0, len(_CLOCKS)))],
                voltage=float(voltage),
            ),
        )
        for i in range(count)
    ]


@settings(max_examples=15, deadline=None)
@given(seed=seeds, count=counts, voltage=voltages)
def test_batch_equals_sequential_itemwise(seed, count, voltage):
    """One N-item chain call == N seeded one-item calls, bitwise."""
    items = _items(seed, count, voltage)
    batched = _characterizer().measure_batch(
        _CLUSTER, [], items=items
    )
    sequential_chain = _characterizer()
    sequential = [
        sequential_chain.measure_batch(_CLUSTER, [], items=[item])[0]
        for item in items
    ]
    for b, s in zip(batched, sequential):
        assert b.amplitude_w == s.amplitude_w
        assert b.peak_frequency_hz == s.peak_frequency_hz
        assert b.loop_frequency_hz == s.loop_frequency_hz
        np.testing.assert_array_equal(
            b.trace.power_dbm, s.trace.power_dbm
        )


@settings(max_examples=15, deadline=None)
@given(
    seed=seeds,
    count=st.integers(min_value=2, max_value=4),
    voltage=voltages,
    perm_seed=seeds,
)
def test_deterministic_outputs_are_permutation_equivariant(
    seed, count, voltage, perm_seed
):
    """Reordering a response-only request reorders the results.

    ``want_amplitude=False`` keeps the analyzer RNG out of the chain,
    so every per-item output is a pure function of the item -- a
    permuted batch must yield exactly the permuted outputs.
    """
    items = _items(seed, count, voltage)
    perm = np.random.default_rng(perm_seed).permutation(count)
    characterizer = _characterizer()

    def run(ordered_items):
        request = ChainRequest(
            cluster=_CLUSTER,
            items=list(ordered_items),
            band=characterizer.band,
            want_amplitude=False,
            want_trace=False,
        )
        return characterizer.chain_path().run(request).items

    base = run(items)
    permuted = run([items[i] for i in perm])
    for out_pos, in_pos in enumerate(perm):
        assert (
            permuted[out_pos].loop_frequency_hz
            == base[in_pos].loop_frequency_hz
        )
        assert permuted[out_pos].ipc == base[in_pos].ipc
        assert permuted[out_pos].max_droop == base[in_pos].max_droop
        assert (
            permuted[out_pos].peak_to_peak
            == base[in_pos].peak_to_peak
        )
