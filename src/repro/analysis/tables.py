"""Paper-style table rendering (Table 2: virus comparison)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cpu.isa import InstructionClass
from repro.cpu.program import LoopProgram

_MIX_COLUMNS = (
    (InstructionClass.BRANCH, "Branch"),
    (InstructionClass.INT_SHORT, "SLintR"),
    (InstructionClass.INT_LONG, "LLintR"),
    (InstructionClass.INT_SHORT_MEM, "SLintM"),
    (InstructionClass.INT_LONG_MEM, "LLintM"),
    (InstructionClass.FLOAT, "Float"),
    (InstructionClass.SIMD, "SIMD"),
    (InstructionClass.MEM, "MEM"),
)


@dataclass
class VirusRow:
    """One row of Table 2."""

    name: str
    program: LoopProgram
    ipc: float
    loop_period_s: float
    loop_frequency_hz: float
    dominant_frequency_hz: float
    voltage_margin_v: float

    def mix(self) -> Dict[InstructionClass, float]:
        return self.program.instruction_mix()


def render_virus_table(rows: Sequence[VirusRow]) -> str:
    """Render virus-comparison rows in the paper's Table 2 layout."""
    headers = [
        "Virus",
        "Instrs",
        "IPC",
        "Period(ns)",
        "LoopF(MHz)",
        "DomF(MHz)",
        "Margin(mV)",
    ] + [label for _, label in _MIX_COLUMNS]
    table: List[List[str]] = [headers]
    for row in rows:
        mix = row.mix()
        table.append(
            [
                row.name,
                str(len(row.program)),
                f"{row.ipc:.2f}",
                f"{row.loop_period_s * 1e9:.2f}",
                f"{row.loop_frequency_hz / 1e6:.2f}",
                f"{row.dominant_frequency_hz / 1e6:.2f}",
                f"{row.voltage_margin_v * 1e3:.1f}",
            ]
            + [f"{mix.get(cls, 0.0) * 100:.0f}%" for cls, _ in _MIX_COLUMNS]
        )
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = [
        "  ".join(cell.rjust(w) for cell, w in zip(r, widths)) for r in table
    ]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)
